"""Profile diffing: compare two object-centric profiles.

The paper's workflow is iterative — profile, fix the top object,
re-profile, confirm the misses moved.  This module makes step three a
first-class operation: diff two :class:`AnalysisResult`s (e.g. baseline
vs optimised run) and report, per allocation site, how its sample share
changed, plus sites that appeared or disappeared entirely (a hoisted
allocation site vanishes from the optimised profile).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.analyzer import AnalysisResult
from repro.core.profile import ResolvedSite

#: Site identity for diffing: the allocation leaf's source identity.
SiteKey = Tuple[str, str, str, int]


def _key(site: ResolvedSite) -> Optional[SiteKey]:
    leaf = site.leaf
    if leaf is None:
        return None
    return leaf.as_tuple()


@dataclass(frozen=True)
class SiteDelta:
    """Change of one allocation site between two profiles."""

    key: SiteKey
    before_share: float
    after_share: float
    before_samples: int
    after_samples: int
    before_allocs: int
    after_allocs: int

    @property
    def location(self) -> str:
        class_name, method, _source, line = self.key
        return f"{class_name}.{method}:{line}"

    @property
    def share_delta(self) -> float:
        return self.after_share - self.before_share

    @property
    def appeared(self) -> bool:
        return self.before_samples == 0 and self.before_allocs == 0

    @property
    def disappeared(self) -> bool:
        return self.after_samples == 0 and self.after_allocs == 0


@dataclass
class ProfileDiff:
    """Full diff between two analyses (same primary event)."""

    event: str
    deltas: List[SiteDelta]
    before_total: int
    after_total: int
    #: Sites (across both inputs) excluded because their allocation
    #: leaf failed to resolve — without a leaf there is no site
    #: identity to match on.  Nonzero values mean the diff is partial.
    unresolved_sites: int = 0

    def improved(self, min_share_drop: float = 0.01) -> List[SiteDelta]:
        """Sites whose share dropped by at least ``min_share_drop``."""
        return [d for d in self.deltas
                if d.share_delta <= -min_share_drop]

    def regressed(self, min_share_gain: float = 0.01) -> List[SiteDelta]:
        return [d for d in self.deltas if d.share_delta >= min_share_gain]

    def removed_sites(self) -> List[SiteDelta]:
        """Sites present before but entirely gone after (e.g. hoisted)."""
        return [d for d in self.deltas if d.disappeared and not d.appeared]

    def render(self, top: int = 10) -> str:
        lines = [
            f"Profile diff ({self.event})",
            f"  samples: {self.before_total} -> {self.after_total}",
        ]
        ranked = sorted(self.deltas, key=lambda d: d.share_delta)
        shown = [d for d in ranked
                 if abs(d.share_delta) >= 0.005][:top]
        for d in shown:
            marker = ("GONE " if d.disappeared
                      else "NEW  " if d.appeared else "     ")
            lines.append(
                f"  {marker}{d.location:40s} "
                f"{d.before_share:6.1%} -> {d.after_share:6.1%} "
                f"({d.share_delta:+.1%})")
        if not shown:
            lines.append("  (no site's share moved by >=0.5pp)")
        if self.unresolved_sites:
            lines.append(f"  ({self.unresolved_sites} site(s) with "
                         f"unresolvable leaves excluded)")
        return "\n".join(lines)


def diff_profiles(before: AnalysisResult,
                  after: AnalysisResult,
                  event: Optional[str] = None) -> ProfileDiff:
    """Diff two analyses; sites are matched by allocation-leaf identity."""
    event = event or before.primary_event
    if event != (after.primary_event if after.primary_event else event) \
            and event not in after.total_samples \
            and after.total_samples:
        raise ValueError(
            f"event {event!r} not present in the 'after' profile")

    table: Dict[SiteKey, Dict[str, int]] = {}
    unresolved = 0

    def fold(result: AnalysisResult, prefix: str) -> None:
        nonlocal unresolved
        for site in result.sites:
            key = _key(site)
            if key is None:
                unresolved += 1
                continue
            entry = table.setdefault(key, {
                "before_samples": 0, "after_samples": 0,
                "before_allocs": 0, "after_allocs": 0})
            entry[f"{prefix}_samples"] += site.metric(event)
            entry[f"{prefix}_allocs"] += site.alloc_count

    fold(before, "before")
    fold(after, "after")

    before_total = before.total(event)
    after_total = after.total(event)
    deltas = []
    for key, entry in table.items():
        before_share = (entry["before_samples"] / before_total
                        if before_total else 0.0)
        after_share = (entry["after_samples"] / after_total
                       if after_total else 0.0)
        deltas.append(SiteDelta(
            key=key,
            before_share=before_share,
            after_share=after_share,
            before_samples=entry["before_samples"],
            after_samples=entry["after_samples"],
            before_allocs=entry["before_allocs"],
            after_allocs=entry["after_allocs"]))
    deltas.sort(key=lambda d: d.share_delta)
    return ProfileDiff(event=event, deltas=deltas,
                       before_total=before_total, after_total=after_total,
                       unresolved_sites=unresolved)
