"""Text rendering of object-centric profiles.

Mirrors the three panes of DJXPerf's GUI (paper Figure 5): for each
problematic object, the allocation call path ("red"), the access call
paths under it ordered by contribution ("blue"), and the metric pane
(sample counts, allocation counts, NUMA locality).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.analyzer import AnalysisResult
from repro.core.profile import ResolvedPath, ResolvedSite


def _render_path(path: ResolvedPath, indent: str) -> List[str]:
    if not path:
        return [f"{indent}<no context>"]
    lines = []
    for depth, frame in enumerate(path):
        lines.append(f"{indent}{'  ' * depth}{frame.location} "
                     f"({frame.source_file})")
    return lines


def render_site(result: AnalysisResult, site: ResolvedSite,
                rank: int, max_access_contexts: int = 3) -> str:
    """One object's report block."""
    event = result.primary_event
    share = result.share(site)
    lines = [
        f"#{rank} object {site.dominant_type()} — "
        f"{site.metric(event)} samples ({share:.1%} of {event})",
        f"   allocations: {site.alloc_count}  "
        f"bytes: {site.allocated_bytes}  "
        f"NUMA remote: {site.remote_ratio:.1%}",
        "   allocation context:",
    ]
    lines.extend(_render_path(site.path, "     "))
    contexts = sorted(site.access_contexts.items(),
                      key=lambda kv: kv[1].get(event, 0), reverse=True)
    if contexts:
        lines.append("   access contexts:")
        for path, metrics in contexts[:max_access_contexts]:
            count = metrics.get(event, 0)
            lines.append(f"     [{count} samples]")
            lines.extend(_render_path(path, "       "))
        hidden = len(contexts) - max_access_contexts
        if hidden > 0:
            lines.append(f"     ... {hidden} more access context(s)")
    return "\n".join(lines)


def render_report(result: AnalysisResult, top: int = 5,
                  max_access_contexts: int = 3) -> str:
    """The full ranked report (the analyzer's human-readable output)."""
    event = result.primary_event
    header = [
        "DJXPerf object-centric profile",
        f"  primary event : {event}",
        f"  total samples : {result.total(event)} "
        f"across {result.thread_count} thread(s)",
        f"  attributed    : {result.coverage(event):.1%}",
        "",
    ]
    blocks = []
    for rank, site in enumerate(result.top_sites(top), start=1):
        if site.metric(event) == 0:
            break
        blocks.append(render_site(result, site, rank, max_access_contexts))
    if not blocks:
        blocks.append("(no samples attributed to tracked objects)")
    return "\n".join(header) + "\n\n".join(blocks)


def render_numa_report(result: AnalysisResult, top: int = 5) -> str:
    """Remote-access ranking (the §4.3 NUMA view)."""
    lines = ["DJXPerf NUMA locality report", ""]
    sites = result.top_remote_sites(top)
    if not sites:
        return "\n".join(lines + ["(no remote accesses observed)"])
    for rank, site in enumerate(sites, start=1):
        lines.append(
            f"#{rank} {site.dominant_type()} at {site.location} — "
            f"{site.remote_samples} remote / {site.total_samples} sampled "
            f"accesses ({site.remote_ratio:.1%} remote)")
        lines.extend(_render_path(site.path, "     "))
        lines.append("")
    return "\n".join(lines).rstrip()
