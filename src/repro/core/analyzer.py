"""Offline analyzer: merge per-thread profiles, rank problematic objects.

The analyzer resolves raw ``(method_id, bci)`` frames to source
locations — so call paths from different threads, and from different
JITted instances of the same method, coalesce — then merges all thread
profiles top-down and orders allocation sites by their share of the
sampled metric (paper §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.profile import (
    FrameResolver,
    RawPath,
    ResolvedPath,
    ResolvedSite,
    ThreadProfile,
)

#: Wire-format tag for serialised AnalysisResults (bump on breaking
#: change; the profile store refuses payloads it does not understand).
PROFILE_SCHEMA = "repro-analysis/1"


@dataclass
class AnalysisResult:
    """Merged, resolved, ranked object-centric profile."""

    primary_event: str
    sites: List[ResolvedSite]
    #: event → total samples across all threads (known + unknown).
    total_samples: Dict[str, int]
    #: event → samples not attributable to any tracked object.
    unknown_samples: Dict[str, int]
    thread_count: int

    def total(self, event: Optional[str] = None) -> int:
        return self.total_samples.get(event or self.primary_event, 0)

    def share(self, site: ResolvedSite, event: Optional[str] = None) -> float:
        """Site's fraction of all samples of ``event`` (0..1)."""
        total = self.total(event)
        if total == 0:
            return 0.0
        return site.metric(event or self.primary_event) / total

    def top_sites(self, n: int = 10,
                  event: Optional[str] = None) -> List[ResolvedSite]:
        event = event or self.primary_event
        ranked = sorted(self.sites, key=lambda s: s.metric(event),
                        reverse=True)
        return ranked[:n]

    def top_remote_sites(self, n: int = 10) -> List[ResolvedSite]:
        """Sites ordered by NUMA remote-access samples (§4.3)."""
        ranked = sorted(self.sites, key=lambda s: s.remote_samples,
                        reverse=True)
        return [s for s in ranked[:n] if s.remote_samples > 0]

    def site_at(self, class_name: str, method_name: str,
                line: Optional[int] = None) -> Optional[ResolvedSite]:
        """Find a site by its allocation leaf frame."""
        for site in self.sites:
            leaf = site.leaf
            if leaf is None:
                continue
            if leaf.class_name == class_name \
                    and leaf.method_name == method_name \
                    and (line is None or leaf.line == line):
                return site
        return None

    def coverage(self, event: Optional[str] = None) -> float:
        """Fraction of samples attributed to *some* tracked object."""
        event = event or self.primary_event
        total = self.total(event)
        if total == 0:
            return 0.0
        unknown = self.unknown_samples.get(event, 0)
        return 1.0 - unknown / total

    # ------------------------------------------------------------------
    # Serialisation (the profile store's payload format)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Stable JSON-able form; :meth:`from_dict` is the exact inverse.

        Sites keep their ranked order, so serialise→load→diff behaves
        identically to diffing the in-memory result.
        """
        return {
            "schema": PROFILE_SCHEMA,
            "primary_event": self.primary_event,
            "total_samples": dict(self.total_samples),
            "unknown_samples": dict(self.unknown_samples),
            "thread_count": self.thread_count,
            "sites": [site.to_dict() for site in self.sites],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisResult":
        schema = data.get("schema")
        if schema != PROFILE_SCHEMA:
            raise ValueError(
                f"unexpected analysis schema {schema!r} "
                f"(want {PROFILE_SCHEMA!r})")
        return cls(
            primary_event=data["primary_event"],
            sites=[ResolvedSite.from_dict(s) for s in data["sites"]],
            total_samples={k: int(v)
                           for k, v in data["total_samples"].items()},
            unknown_samples={k: int(v)
                             for k, v in data["unknown_samples"].items()},
            thread_count=int(data["thread_count"]))


def _resolve_path(path: RawPath, resolver: FrameResolver,
                  cache: dict) -> ResolvedPath:
    resolved = cache.get(path)
    if resolved is None:
        resolved = tuple(resolver(frame) for frame in path)
        cache[path] = resolved
    return resolved


def analyze_profiles(profiles: Sequence[ThreadProfile],
                     resolver: FrameResolver,
                     primary_event: str) -> AnalysisResult:
    """Merge per-thread profiles into one ranked result (top-down merge).

    Merging is associative and commutative: allocation paths with the
    same resolved frames coalesce, their metrics and access contexts sum.
    """
    cache: dict = {}
    merged: Dict[ResolvedPath, ResolvedSite] = {}
    total_samples: Dict[str, int] = {}
    unknown_samples: Dict[str, int] = {}

    for profile in profiles:
        for event, count in profile.total_samples.items():
            total_samples[event] = total_samples.get(event, 0) + count
        for event, count in profile.unknown_samples.items():
            unknown_samples[event] = unknown_samples.get(event, 0) + count
        for raw_path, stats in profile.sites.items():
            path = _resolve_path(raw_path, resolver, cache)
            site = merged.get(path)
            if site is None:
                site = ResolvedSite(path=path)
                merged[path] = site
            site.alloc_count += stats.alloc_count
            site.allocated_bytes += stats.allocated_bytes
            if stats.min_size:
                site.min_size = (stats.min_size if site.min_size == 0
                                 else min(site.min_size, stats.min_size))
            site.max_size = max(site.max_size, stats.max_size)
            for name, count in stats.type_names.items():
                site.type_names[name] = site.type_names.get(name, 0) + count
            for event, count in stats.metrics.items():
                site.metrics[event] = site.metrics.get(event, 0) + count
            site.remote_samples += stats.remote_samples
            site.local_samples += stats.local_samples
            for raw_access, metrics in stats.access_contexts.items():
                access = _resolve_path(raw_access, resolver, cache)
                ctx = site.access_contexts.setdefault(access, {})
                for event, count in metrics.items():
                    ctx[event] = ctx.get(event, 0) + count

    sites = sorted(merged.values(),
                   key=lambda s: s.metric(primary_event), reverse=True)
    return AnalysisResult(
        primary_event=primary_event,
        sites=sites,
        total_samples=total_samples,
        unknown_samples=unknown_samples,
        thread_count=len(profiles))
