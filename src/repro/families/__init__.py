"""Profiler families beyond DJXPerf, built on the observation bus.

DJXPerf's attribution substrate — allocation-site call paths, the
interval splay tree over live object ranges, GC relocation handling and
the offline analyzer — generalises past memory bloat.  This package
hosts the sibling-paper families that reuse it:

* :class:`ReplicaProfiler` — OJXPerf-style object replica detection:
  objects whose written payloads are byte-identical are grouped, and
  allocation sites are ranked by replicated bytes weighted by sampled
  cache misses.
* :class:`RedundancyProfiler` — JXPerf-style (Su & Chabbi) load/store
  redundancy: dead stores (a store never loaded before the next store
  or the object's free) and silent loads (a load observing the value
  the previous load already saw), attributed to the allocation site of
  the touched object.

Both families consume the demand-driven event streams: they declare
``wants_accesses``/``wants_allocs`` so the machine only constructs the
events somebody asked for, and both run **offline** against recorded
traces (:func:`replay_family`) exactly as they run live.
"""

from repro.families.base import FamilyCostModel, ObjectFamilyProfiler
from repro.families.redundancy import RedundancyProfiler
from repro.families.replica import ReplicaProfiler

#: family name → profiler class, the registry CLI/serve paths use.
FAMILIES = {
    ReplicaProfiler.label: ReplicaProfiler,
    RedundancyProfiler.label: RedundancyProfiler,
}

#: Every profiler family selectable via ``--family`` (DJXPerf included).
FAMILY_CHOICES = ("djxperf",) + tuple(sorted(FAMILIES))


def make_family(name: str, machine=None, sample_period: int = 64,
                size_threshold: int = 0,
                charge_overhead: bool = True) -> ObjectFamilyProfiler:
    """Construct a family profiler by registry name."""
    try:
        cls = FAMILIES[name]
    except KeyError:
        raise KeyError(f"unknown profiler family {name!r}; "
                       f"have {sorted(FAMILIES)}") from None
    return cls(machine=machine, sample_period=sample_period,
               size_threshold=size_threshold,
               charge_overhead=charge_overhead)


def replay_family(trace_path: str, family: str, sample_period: int = 64,
                  size_threshold: int = 0):
    """Re-run a family analyzer over a recorded trace (no simulation).

    The trace must have been recorded with ``include_accesses=True`` —
    family collectors are access-stream consumers.  Returns the same
    :class:`~repro.core.analyzer.AnalysisResult` the live run produces,
    byte-identical under ``to_dict``.
    """
    from repro.obs.replay import replay_events
    from repro.obs.trace import TraceReader

    reader = TraceReader(trace_path)
    if not reader.includes_accesses:
        raise ValueError(
            f"{trace_path}: trace has no raw access events; family "
            f"analyzers need them — record with include_accesses=True")
    collector = make_family(family, machine=None,
                            sample_period=sample_period,
                            size_threshold=size_threshold,
                            charge_overhead=False)
    collector.enabled = True
    reader = replay_events(trace_path, [collector])
    return collector.analyze(reader.frame_resolver())


__all__ = [
    "FAMILIES",
    "FAMILY_CHOICES",
    "FamilyCostModel",
    "ObjectFamilyProfiler",
    "RedundancyProfiler",
    "ReplicaProfiler",
    "make_family",
    "replay_family",
]
