"""Shared machinery for object-centric profiler families.

Every family in this package answers the same shape of question DJXPerf
answers for bloat: *which allocation site produced the objects behind
this inefficiency?*  The answer machinery is therefore shared with
:class:`~repro.core.jvmtiagent.DjxJvmtiAgent` — per-thread
:class:`~repro.core.profile.ThreadProfile` keyed by allocation call
path, an interval splay tree over live object ranges, the GC
relocation-map protocol, and :func:`~repro.core.analyzer.analyze_profiles`
for the merged, ranked result.  What differs per family is the *signal*:
which event stream it consumes and how it turns events into per-site
metrics.  Subclasses override the ``on_access``/``on_sample`` handlers
and the :meth:`ObjectFamilyProfiler._rank` hook; everything else —
attach/detach, object tracking, relocation, offline replay adoption —
lives here.

Unlike the sampling-only DJXPerf agent, families may set
``wants_accesses`` and read the raw access stream (the JXPerf/OJXPerf
papers use PEBS with precise loads *and* stores; the simulator gives the
exact stream instead).  The bus still constructs those events only while
a subscriber wants them, so machines running DJXPerf alone keep the
demand-driven skip path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.analyzer import AnalysisResult, analyze_profiles
from repro.core.profile import FrameResolver, ThreadProfile, TrackedObject
from repro.core.splay import IntervalSplayTree
from repro.obs.collector import Collector
from repro.obs.events import (
    AllocEvent,
    GcFinalizeEvent,
    GcMoveEvent,
    GcNotifyEvent,
    SampleEvent,
    SamplerOpenEvent,
    ThreadStartEvent,
)


@dataclass(frozen=True)
class FamilyCostModel:
    """Cycle cost of a family profiler's own work.

    Alloc/sample/GC costs mirror :class:`~repro.core.jvmtiagent
    .AgentCostModel` — the hooks are the same native machinery.  The
    extra ``access_check`` is the per-access shadow-state update that
    value-aware families pay (JXPerf's watchpoint/shadow-memory costs),
    which is why their overhead scales with access volume rather than
    sample count.
    """

    alloc_hook_dispatch: int = 50
    alloc_hook_base: int = 120
    alloc_hook_per_frame: int = 12
    access_check: int = 9
    sample_base: int = 300
    sample_per_frame: int = 12
    memmove_record: int = 15
    gc_batch_per_entry: int = 40
    finalize_remove: int = 30


@dataclass
class FamilyStats:
    allocations_seen: int = 0
    allocations_filtered: int = 0
    accesses_seen: int = 0
    accesses_untracked: int = 0      # tracked-address misses / no value
    samples_handled: int = 0
    samples_unknown: int = 0
    relocations_applied: int = 0
    relocations_unknown: int = 0
    finalized_removed: int = 0


@dataclass
class FamilyObject(TrackedObject):
    """Splay payload with mutable placement state.

    Families need per-object shadow state addressed by *offset into the
    object*, so the payload tracks its own current base address (updated
    on every GC relocation — batches preserve stream order, so the base
    is always consistent with the access events around it) and whether
    the object is still live.
    """

    addr: int = 0
    alive: bool = True


class ObjectFamilyProfiler(Collector):
    """Base collector for the profiler families.

    Live use::

        profiler = ReplicaProfiler(machine, sample_period=64)
        profiler.attach()
        ... run ...
        result = profiler.analyze()

    Offline use (``machine=None``): feed it a recorded trace via
    :func:`repro.families.replay_family`; sampler ids are adopted from
    the trace's :class:`SamplerOpenEvent` records by ``owner`` label.
    """

    label = "family"
    wants_accesses = True
    wants_allocs = True
    #: Metric name the family ranks by; also ``AnalysisResult.primary_event``.
    primary_metric = "family"

    def __init__(self, machine=None, sample_period: int = 64,
                 size_threshold: int = 0, charge_overhead: bool = True,
                 costs: Optional[FamilyCostModel] = None) -> None:
        super().__init__()
        self.machine = machine
        self.sample_period = sample_period
        self.size_threshold = size_threshold
        self.charge_overhead = charge_overhead
        self.costs = costs or FamilyCostModel()
        self.stats = FamilyStats()
        self.splay = IntervalSplayTree()
        self.profiles: Dict[int, ThreadProfile] = {}
        #: Every tracked object ever, in allocation order (dead ones
        #: keep their shadow state) — the unit replica grouping walks.
        self._objects: List[FamilyObject] = []
        self._sampler_ids: Set[int] = set()
        self._relocation_map: Dict[int, Tuple[int, int]] = {}
        self.enabled = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, machine=None) -> "ObjectFamilyProfiler":
        """Subscribe to the bus (and open any samplers the family uses)."""
        if machine is not None:
            self.machine = machine
        if self.machine is None:
            raise RuntimeError(
                "offline profiler (machine=None) cannot attach; feed it "
                "trace batches via repro.families.replay_family instead")
        self.enabled = True
        bus = self.machine.bus
        bus.subscribe(self)
        self._open_samplers(bus)
        for thread in self.machine.threads:
            if thread.alive:
                self.profile_of(thread.tid)
        return self

    def detach(self) -> None:
        """Stop collecting.  Profiles and tracked state stay readable."""
        self.enabled = False
        if self.bus is not None:
            for sampler_id in self._sampler_ids:
                self.bus.close_sampler(sampler_id)
            self.bus.unsubscribe(self)

    def _open_samplers(self, bus) -> None:
        """Hook: open PMU samplers at attach time (default: none)."""

    def profile_of(self, tid: int) -> ThreadProfile:
        profile = self.profiles.get(tid)
        if profile is None:
            profile = ThreadProfile(tid)
            self.profiles[tid] = profile
        return profile

    def _gc_thread(self):
        if self.machine is None:
            return None
        return self.machine._current_thread

    def on_thread_start(self, event: ThreadStartEvent) -> None:
        if self.enabled:
            self.profile_of(event.tid)

    # ------------------------------------------------------------------
    # Offline sampler adoption (trace replay)
    # ------------------------------------------------------------------
    def on_sampler_open(self, event: SamplerOpenEvent) -> None:
        if self.machine is None and event.owner == self.label:
            self._sampler_ids.add(event.sampler_id)

    def accept_sampler(self, sampler_id: int) -> None:
        """Manually accept a sampler id (offline resampling)."""
        self._sampler_ids.add(sampler_id)

    # ------------------------------------------------------------------
    # Object tracking
    # ------------------------------------------------------------------
    def _make_payload(self, event: AllocEvent) -> FamilyObject:
        """Hook: build the family's payload for one fresh object."""
        return FamilyObject(alloc_path=event.path, alloc_tid=event.tid,
                            type_name=event.type_name, size=event.size,
                            addr=event.addr)

    def on_alloc(self, event: AllocEvent) -> None:
        if not self.enabled:
            return
        self.stats.allocations_seen += 1
        if self.charge_overhead:
            self.charge(event.thread, self.costs.alloc_hook_dispatch)
        if event.size < self.size_threshold:
            self.stats.allocations_filtered += 1
            return
        path = event.path
        if self.charge_overhead:
            self.charge(event.thread,
                        self.costs.alloc_hook_base
                        + self.costs.alloc_hook_per_frame * len(path))
        obj = self._make_payload(event)
        self.splay.insert(event.addr, event.end, obj)
        self._objects.append(obj)
        self.profile_of(event.tid).site(path).record_allocation(
            event.type_name, event.size)

    def _lookup(self, address: int) -> Optional[FamilyObject]:
        """The tracked object covering ``address``, if any."""
        obj = self.splay.lookup(address)
        if isinstance(obj, FamilyObject):
            return obj
        return None

    # ------------------------------------------------------------------
    # PMU overflow samples (families that open samplers)
    # ------------------------------------------------------------------
    def on_sample(self, event: SampleEvent) -> None:
        if not self.enabled or event.sampler_id not in self._sampler_ids:
            return
        profile = self.profile_of(event.tid)
        profile.record_total(event.event)
        self.stats.samples_handled += 1
        if self.charge_overhead:
            self.charge(event.thread,
                        self.costs.sample_base
                        + self.costs.sample_per_frame * len(event.path))
        obj = self._lookup(event.address)
        if obj is None:
            profile.record_unknown(event.event)
            self.stats.samples_unknown += 1
            return
        profile.site(obj.alloc_path).record_sample(
            event.event, event.path, event.remote)

    # ------------------------------------------------------------------
    # GC handling — the DJXPerf relocation-map protocol (paper §4.5),
    # with one difference: families never insert unknown moved
    # intervals, because without the allocation event there is no shadow
    # state to maintain.
    # ------------------------------------------------------------------
    def on_gc_move(self, event: GcMoveEvent) -> None:
        if not self.enabled:
            return
        self._relocation_map[event.src] = (event.dst, event.size)
        if self.charge_overhead:
            self.charge(self._gc_thread(), self.costs.memmove_record)

    def on_gc_notification(self, event: GcNotifyEvent) -> None:
        if not self.enabled or not self._relocation_map:
            return
        cost = 0
        moves = sorted(self._relocation_map.items(), key=lambda kv: kv[1][0])
        for src, (dst, size) in moves:
            payload = self.splay.remove_start(src)
            cost += self.costs.gc_batch_per_entry
            if payload is None:
                self.stats.relocations_unknown += 1
                continue
            payload.addr = dst
            self.splay.insert(dst, dst + size, payload)
            self.stats.relocations_applied += 1
        self._relocation_map.clear()
        if self.charge_overhead:
            self.charge(self._gc_thread(), cost)

    def on_gc_finalize(self, event: GcFinalizeEvent) -> None:
        if not self.enabled:
            return
        removed = self.splay.remove_start(event.addr)
        self._relocation_map.pop(event.addr, None)
        if removed is None:
            return
        self.stats.finalized_removed += 1
        if self.charge_overhead:
            self.charge(self._gc_thread(), self.costs.finalize_remove)
        if isinstance(removed, FamilyObject):
            removed.alive = False
            self._finalized(removed)

    def _finalized(self, obj: FamilyObject) -> None:
        """Hook: the object's lifetime ended (shadow state is final)."""

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyze(self, resolver: Optional[FrameResolver] = None
                ) -> AnalysisResult:
        """Merge thread profiles into a ranked result.

        Idempotent: calling twice returns equal results (families that
        derive metrics at analyze time recompute them from scratch).
        """
        resolver = resolver or self.frame_resolver()
        self._derive_metrics()
        result = analyze_profiles(list(self.profiles.values()), resolver,
                                  self.primary_metric)
        return self._rank(result)

    def _derive_metrics(self) -> None:
        """Hook: (re)compute per-site metrics on the raw thread profiles
        just before merging.  Must be idempotent — assign, don't add."""

    def _rank(self, result: AnalysisResult) -> AnalysisResult:
        """Hook: post-process the merged result (scores, re-ranking)."""
        return result

    def frame_resolver(self) -> FrameResolver:
        from repro.core.profile import ResolvedFrame
        from repro.jvmti.agent_iface import JvmtiEnv

        if self.machine is None:
            raise RuntimeError(
                "offline profiler has no machine; resolve frames with the "
                "trace reader's frame_resolver()")
        env = JvmtiEnv(self.machine)

        def resolve(frame) -> ResolvedFrame:
            method_id, bci = frame
            info = env.get_method_info(method_id)
            table = env.get_line_number_table(method_id)
            return ResolvedFrame(info.class_name, info.method_name,
                                 info.source_file, table.get(bci, 0))

        return resolve

    # ------------------------------------------------------------------
    # Memory footprint (rough, mirrors the agent's estimate)
    # ------------------------------------------------------------------
    _SPLAY_NODE_BYTES = 64
    _SITE_BYTES = 96
    _CONTEXT_BYTES = 48
    _RELOC_ENTRY_BYTES = 24
    _SHADOW_CELL_BYTES = 24

    def _shadow_cells(self) -> int:
        """Hook: number of per-object shadow cells currently held."""
        return 0

    def memory_footprint(self) -> int:
        total = len(self.splay) * self._SPLAY_NODE_BYTES
        total += len(self._relocation_map) * self._RELOC_ENTRY_BYTES
        total += self._shadow_cells() * self._SHADOW_CELL_BYTES
        for profile in self.profiles.values():
            total += len(profile.sites) * self._SITE_BYTES
            for stats in profile.sites.values():
                total += len(stats.access_contexts) * self._CONTEXT_BYTES
                total += (len(stats.path) + sum(
                    len(p) for p in stats.access_contexts)) * 16
        return total
