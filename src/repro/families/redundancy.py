"""Dead-store / silent-load profiler (the JXPerf family).

JXPerf [FSE'19] watches individual memory cells with hardware debug
registers and flags three wasteful patterns:

* **dead store** — a store whose value is overwritten (or the object
  freed) before anything loads it;
* **silent store** — a store writing the value the cell already holds;
* **silent load** — a load observing the same value the previous load
  of that cell already returned.

The simulator port is object-centric, DJXPerf-style: instead of
sampling a few watched cells, it consumes the full value-carrying
access stream and keeps one shadow cell per touched offset of every
tracked object, attributing each detected redundancy to the enclosing
object's *allocation site*.  The rank metric ``redundancy`` is the
total count of all three kinds; ``redundancy-permille`` gives the
per-site fraction of tracked accesses that were redundant (scaled by
1000 so it serialises as an integer metric).

Detection is exact, not sampled, and every event it needs rides the
recordable trace — so replaying a trace reproduces the live analysis
byte-for-byte.  Accesses without a value (bulk zeroing/native walks)
and accesses to untracked objects are skipped, which makes the counts
conservative.  A dead store discovered by an overwriting store is
attributed to the overwriting thread's profile; one discovered at
object death is attributed to the thread that issued the pending store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.analyzer import AnalysisResult
from repro.core.profile import ObjectSiteStats, ThreadProfile
from repro.families.base import FamilyObject, ObjectFamilyProfiler
from repro.obs.events import AccessEvent, AllocEvent

#: Distinct-from-everything marker for "cell never seen" (stored values
#: are canonicalised primitives, so ``None`` is not usable — it never
#: appears as a value, but a sentinel keeps intent explicit).
_UNSET = object()

#: Shadow-cell slots: [pending store tid | None, last known value,
#: value the previous load returned].
_PENDING, _VALUE, _LOADED = 0, 1, 2


@dataclass
class RedundancyObject(FamilyObject):
    """Tracked object plus one shadow cell per touched offset."""

    cells: Dict[int, List] = field(default_factory=dict)


class RedundancyProfiler(ObjectFamilyProfiler):
    """Count dead stores, silent stores and silent loads per site."""

    label = "redundancy"
    wants_accesses = True
    wants_allocs = True
    primary_metric = "redundancy"

    def _make_payload(self, event: AllocEvent) -> RedundancyObject:
        return RedundancyObject(alloc_path=event.path, alloc_tid=event.tid,
                                type_name=event.type_name, size=event.size,
                                addr=event.addr)

    # ------------------------------------------------------------------
    # Shadow-cell state machine
    # ------------------------------------------------------------------
    def on_access(self, event: AccessEvent) -> None:
        if not self.enabled:
            return
        self.stats.accesses_seen += 1
        if self.charge_overhead:
            self.charge(event.thread, self.costs.access_check)
        value = event.value
        if value is None:
            self.stats.accesses_untracked += 1
            return
        obj = self._lookup(event.address)
        if obj is None:
            self.stats.accesses_untracked += 1
            return
        cell = obj.cells.get(event.address - obj.addr)
        if cell is None:
            cell = [None, _UNSET, _UNSET]
            obj.cells[event.address - obj.addr] = cell
        profile = self.profile_of(event.tid)
        site = profile.site(obj.alloc_path)
        metrics = site.metrics
        if event.is_write:
            metrics["stores"] = metrics.get("stores", 0) + 1
            if cell[_PENDING] is not None:
                self._hit(profile, site, "dead-stores")
            if cell[_VALUE] is not _UNSET and cell[_VALUE] == value:
                self._hit(profile, site, "silent-stores")
            cell[_PENDING] = event.tid
            cell[_VALUE] = value
        else:
            metrics["loads"] = metrics.get("loads", 0) + 1
            if cell[_LOADED] is not _UNSET and cell[_LOADED] == value:
                self._hit(profile, site, "silent-loads")
            cell[_PENDING] = None
            cell[_VALUE] = value
            cell[_LOADED] = value

    def _hit(self, profile: ThreadProfile, site: ObjectSiteStats,
             kind: str) -> None:
        site.metrics[kind] = site.metrics.get(kind, 0) + 1
        site.metrics["redundancy"] = site.metrics.get("redundancy", 0) + 1
        profile.record_total("redundancy")

    def _finalized(self, obj: RedundancyObject) -> None:
        # Stores still pending when the object dies were never loaded:
        # dead by the free-before-load rule.  (Pending stores on objects
        # still live at program end are NOT counted — the program could
        # have read them later.)
        for cell in obj.cells.values():
            tid = cell[_PENDING]
            if tid is None:
                continue
            profile = self.profile_of(tid)
            self._hit(profile, profile.site(obj.alloc_path), "dead-stores")
            cell[_PENDING] = None

    # ------------------------------------------------------------------
    # Ranking
    # ------------------------------------------------------------------
    def _rank(self, result: AnalysisResult) -> AnalysisResult:
        for site in result.sites:
            tracked = site.metrics.get("stores", 0) \
                + site.metrics.get("loads", 0)
            if tracked:
                site.metrics["redundancy-permille"] = \
                    site.metrics.get("redundancy", 0) * 1000 // tracked
        return result

    def _shadow_cells(self) -> int:
        return sum(len(obj.cells) for obj in self._objects)
