"""Object-replica profiler (the OJXPerf family).

OJXPerf [ICSE'22] finds *replicated objects*: byte-identical objects
produced over and over by the same allocation sites — duplicate strings,
re-parsed configs, re-materialised lookup tables.  Memory they occupy
and the cache misses spent touching them are pure overhead relative to
sharing one canonical instance.

The simulator port keeps the paper's shape while riding the DJXPerf
attribution substrate:

* The **content hash** comes from a write-through shadow: every scalar
  store carries its canonicalised value on the
  :class:`~repro.obs.events.AccessEvent`, and the profiler mirrors it
  into a per-object ``{offset: value}`` shadow.  Two objects are
  replicas when type, size and final shadow contents all match —
  including the all-default (never-written) case, which real replica
  detectors flag too.  Building content from the event stream rather
  than by hashing live heap bytes is what lets the exact same analysis
  run offline against a recorded trace.
* The **cost weight** comes from a sampled PMU event (L1D misses, like
  DJXPerf's default): sites are ranked by
  ``replica-bytes * (1 + sampled misses)``, so a site producing many
  replicas that are also hot dominates one producing cold duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.analyzer import AnalysisResult
from repro.families.base import FamilyObject, ObjectFamilyProfiler
from repro.obs.events import AccessEvent, AllocEvent
from repro.pmu.events import L1_MISS, PmuEvent


@dataclass
class ReplicaObject(FamilyObject):
    """Tracked object plus its write-through content shadow."""

    shadow: Dict[int, object] = field(default_factory=dict)

    def content_key(self) -> tuple:
        # Offsets are unique ints, so sorting never compares values
        # (which may be of mixed, unorderable types).
        return tuple(sorted(self.shadow.items()))


class ReplicaProfiler(ObjectFamilyProfiler):
    """Rank allocation sites by replicated bytes weighted by misses."""

    label = "replica"
    wants_accesses = True
    wants_allocs = True
    primary_metric = "replica-score"

    #: PMU event used as the cost weight.
    sample_event: PmuEvent = L1_MISS

    def _open_samplers(self, bus) -> None:
        self._sampler_ids.add(
            bus.open_sampler(self.sample_event, self.sample_period,
                             owner=self.label))

    def _make_payload(self, event: AllocEvent) -> ReplicaObject:
        return ReplicaObject(alloc_path=event.path, alloc_tid=event.tid,
                             type_name=event.type_name, size=event.size,
                             addr=event.addr)

    # ------------------------------------------------------------------
    # Content shadow
    # ------------------------------------------------------------------
    def on_access(self, event: AccessEvent) -> None:
        if not self.enabled:
            return
        self.stats.accesses_seen += 1
        if self.charge_overhead:
            self.charge(event.thread, self.costs.access_check)
        if not event.is_write or event.value is None:
            return
        obj = self._lookup(event.address)
        if obj is None:
            self.stats.accesses_untracked += 1
            return
        obj.shadow[event.address - obj.addr] = event.value

    # ------------------------------------------------------------------
    # Replica grouping (analyze time; final shadows are the contents)
    # ------------------------------------------------------------------
    def _derive_metrics(self) -> None:
        # Assign from scratch so analyze() stays idempotent.
        for profile in self.profiles.values():
            for site in profile.sites.values():
                site.metrics.pop("replica-bytes", None)
                site.metrics.pop("replicas", None)
        firsts: Dict[tuple, ReplicaObject] = {}
        for obj in self._objects:
            key = (obj.type_name, obj.size, obj.content_key())
            if key not in firsts:
                # The first object with these contents is the canonical
                # instance; only the duplicates after it are waste.
                firsts[key] = obj
                continue
            metrics = self.profile_of(obj.alloc_tid) \
                .site(obj.alloc_path).metrics
            metrics["replica-bytes"] = \
                metrics.get("replica-bytes", 0) + obj.size
            metrics["replicas"] = metrics.get("replicas", 0) + 1

    def _rank(self, result: AnalysisResult) -> AnalysisResult:
        miss_event = self.sample_event.name
        total_bytes = total_score = total_replicas = 0
        for site in result.sites:
            replica_bytes = site.metrics.get("replica-bytes", 0)
            score = replica_bytes * (1 + site.metrics.get(miss_event, 0))
            site.metrics["replica-score"] = score
            total_bytes += replica_bytes
            total_score += score
            total_replicas += site.metrics.get("replicas", 0)
        totals = result.total_samples
        totals["replica-score"] = total_score
        totals["replica-bytes"] = total_bytes
        totals["replicas"] = total_replicas
        sites = sorted(result.sites,
                       key=lambda s: s.metric("replica-score"), reverse=True)
        return AnalysisResult(primary_event=self.primary_metric, sites=sites,
                              total_samples=totals,
                              unknown_samples=result.unknown_samples,
                              thread_count=result.thread_count)

    def _shadow_cells(self) -> int:
        return sum(len(obj.shadow) for obj in self._objects)
