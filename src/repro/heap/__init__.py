"""Heap substrate: object layout, bump allocation, and a moving GC."""

from repro.heap.allocator import (
    AllocHook,
    Heap,
    HeapObject,
    HeapStats,
    OutOfMemoryError,
    Ref,
)
from repro.heap.gc import (
    FinalizeEvent,
    GcCostModel,
    GcNotification,
    GcStats,
    MarkCompactCollector,
    MemmoveEvent,
)
from repro.heap.layout import (
    ELEM_SIZES,
    HEADER_SIZE,
    OBJECT_ALIGNMENT,
    FieldSpec,
    JClass,
    Kind,
    align,
    array_elem_offset,
    array_size,
)

__all__ = [
    "AllocHook",
    "ELEM_SIZES",
    "FieldSpec",
    "FinalizeEvent",
    "GcCostModel",
    "GcNotification",
    "GcStats",
    "HEADER_SIZE",
    "Heap",
    "HeapObject",
    "HeapStats",
    "JClass",
    "Kind",
    "MarkCompactCollector",
    "MemmoveEvent",
    "OBJECT_ALIGNMENT",
    "OutOfMemoryError",
    "Ref",
    "align",
    "array_elem_offset",
    "array_size",
]

from repro.heap.semispace import SemispaceCollector  # noqa: E402

__all__.append("SemispaceCollector")
