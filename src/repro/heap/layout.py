"""Object layout: classes, fields, arrays, headers, alignment.

The simulated heap lays objects out the way HotSpot does in spirit:
a fixed-size header followed by fields (for instances) or elements (for
arrays).  Layout determines the *address* each field/element access
touches, which is what drives cache behaviour and what the PMU's
effective-address samples report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Bytes occupied by the object header (mark word + klass pointer).
HEADER_SIZE = 16

#: All object sizes are rounded up to this alignment.
OBJECT_ALIGNMENT = 8


class Kind(enum.Enum):
    """Value kinds stored in fields and array elements."""

    INT = "int"
    FLOAT = "float"
    REF = "ref"

    @property
    def default(self):
        if self is Kind.REF:
            return None
        if self is Kind.FLOAT:
            return 0.0
        return 0


#: Element sizes in bytes for primitive array kinds (Java-like).
ELEM_SIZES = {Kind.INT: 8, Kind.FLOAT: 8, Kind.REF: 8}

# Enum-keyed dict lookups pay a Python-level ``Enum.__hash__`` per hit;
# the layout helpers sit on allocation/element hot paths, so each member
# carries its element size as a plain attribute too.
for _kind, _size in ELEM_SIZES.items():
    _kind.elem_bytes = _size


def align(size: int, alignment: int = OBJECT_ALIGNMENT) -> int:
    """Round ``size`` up to a multiple of ``alignment``."""
    return (size + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class FieldSpec:
    """One declared instance field."""

    name: str
    kind: Kind = Kind.INT


class JClass:
    """A simulated Java class: a name plus an ordered field list.

    Field offsets are assigned in declaration order after the header.
    Every field occupies 8 bytes (the HotSpot-on-x86_64 slot size for
    longs/doubles/oops; we do not model field packing of sub-word types).
    """

    def __init__(self, name: str, fields: Sequence[FieldSpec] = (),
                 superclass: Optional["JClass"] = None) -> None:
        if not name:
            raise ValueError("class name must be non-empty")
        self.name = name
        self.superclass = superclass
        inherited: List[FieldSpec] = list(superclass.all_fields) if superclass else []
        own_names = {f.name for f in fields}
        if len(own_names) != len(tuple(fields)):
            raise ValueError(f"duplicate field names in class {name}")
        clash = own_names & {f.name for f in inherited}
        if clash:
            raise ValueError(f"class {name} redeclares inherited fields {clash}")
        self.all_fields: List[FieldSpec] = inherited + list(fields)
        self._offsets: Dict[str, int] = {}
        self._kinds: Dict[str, Kind] = {}
        offset = HEADER_SIZE
        for spec in self.all_fields:
            self._offsets[spec.name] = offset
            self._kinds[spec.name] = spec.kind
            offset += 8
        self.instance_size = align(offset)

    def field_offset(self, name: str) -> int:
        try:
            return self._offsets[name]
        except KeyError:
            raise KeyError(f"class {self.name} has no field {name!r}") from None

    def field_kind(self, name: str) -> Kind:
        try:
            return self._kinds[name]
        except KeyError:
            raise KeyError(f"class {self.name} has no field {name!r}") from None

    def has_field(self, name: str) -> bool:
        return name in self._offsets

    def ref_fields(self) -> List[str]:
        """Names of reference-kind fields (for GC tracing)."""
        return [f.name for f in self.all_fields if f.kind is Kind.REF]

    def is_subclass_of(self, other: "JClass") -> bool:
        cls: Optional[JClass] = self
        while cls is not None:
            if cls is other:
                return True
            cls = cls.superclass
        return False

    def __repr__(self) -> str:
        return f"JClass({self.name}, {len(self.all_fields)} fields)"


def array_size(elem_kind: Kind, length: int) -> int:
    """Total byte size of an array object, header included."""
    if length < 0:
        raise ValueError(f"negative array length {length}")
    return align(HEADER_SIZE + elem_kind.elem_bytes * length)


def array_elem_offset(elem_kind: Kind, index: int) -> int:
    """Byte offset of element ``index`` from the array base address."""
    return HEADER_SIZE + elem_kind.elem_bytes * index
