"""Semispace copying collector — the second GC flavour.

The paper's GC handling (§4.5) claims to work for *all* collectors in
the off-the-shelf JVM because it only relies on two observables:
``memmove`` for moves and ``finalize`` before reclamation.  The
mark-compact collector moves only objects with garbage below them; a
copying collector moves **every** survivor on **every** collection —
the adversarial case for the relocation map.  This implementation
emits the same event protocol as
:class:`~repro.heap.gc.MarkCompactCollector`, so profilers cannot tell
(and must not need to know) which collector is running.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set

from repro.heap.allocator import Heap
from repro.heap.gc import (
    FinalizeEvent,
    GcCostModel,
    GcNotification,
    GcStats,
    MemmoveEvent,
    RootsProvider,
)


class SemispaceCollector:
    """Cheney-style copying collector over a :class:`Heap`.

    The heap is split into two equal spaces; allocation bumps through
    the active space and a collection evacuates survivors to the other
    space, then flips.  Capacity available to the program is half the
    heap — the classic space trade-off.
    """

    def __init__(self, heap: Heap, roots_provider: RootsProvider,
                 cost_model: Optional[GcCostModel] = None) -> None:
        self.heap = heap
        self.roots_provider = roots_provider
        self.cost_model = cost_model or GcCostModel()
        self.stats = GcStats()
        self.on_gc_start: List[Callable[[int], None]] = []
        self.on_memmove: List[Callable[[MemmoveEvent], None]] = []
        self.on_finalize: List[Callable[[FinalizeEvent], None]] = []
        self.on_gc_end: List[Callable[[int], None]] = []
        self.on_notification: List[Callable[[GcNotification], None]] = []

        half = heap.size // 2
        self._space_size = half
        self._spaces = (heap.base, heap.base + half)
        self._active = 0
        # Constrain the bump allocator to the active space.
        heap.limit = self._spaces[0] + half
        heap.collector = self

    @property
    def active_space(self) -> int:
        """Base address of the space currently allocated into."""
        return self._spaces[self._active]

    def _mark(self) -> Set[int]:
        live: Set[int] = set()
        stack = [oid for oid in self.roots_provider()
                 if oid in self.heap.objects]
        while stack:
            oid = stack.pop()
            if oid in live:
                continue
            live.add(oid)
            obj = self.heap.objects.get(oid)
            if obj is None:
                continue
            for child in obj.referenced_oids():
                if child not in live and child in self.heap.objects:
                    stack.append(child)
        return live

    def collect(self, reason: str = "explicit") -> GcNotification:
        heap = self.heap
        gc_id = self.stats.collections + 1
        for cb in self.on_gc_start:
            cb(gc_id)

        live = self._mark()

        # Finalize + reclaim the dead (they are simply not evacuated).
        dead = [obj for oid, obj in heap.objects.items() if oid not in live]
        reclaimed_bytes = 0
        for obj in dead:
            if obj.finalizable:
                event = FinalizeEvent(obj.oid, obj.addr, obj.size,
                                      obj.type_name)
                for cb in self.on_finalize:
                    cb(event)
            reclaimed_bytes += obj.size
            del heap.objects[obj.oid]

        # Evacuate every survivor into to-space, preserving address
        # order (Cheney's scan order over a breadth-first copy also
        # preserves allocation order for our flat object graph walk).
        to_space = self._spaces[1 - self._active]
        moved_objects = 0
        moved_bytes = 0
        top = to_space
        for obj in heap.live_objects_in_address_order():
            event = MemmoveEvent(obj.oid, src=obj.addr, dst=top,
                                 size=obj.size)
            obj.addr = top
            top += obj.size
            moved_objects += 1
            moved_bytes += obj.size
            for cb in self.on_memmove:
                cb(event)

        # Flip.
        self._active = 1 - self._active
        heap._top = top
        heap.base = to_space
        heap.limit = to_space + self._space_size

        pause = self.cost_model.pause(len(live), moved_bytes, len(dead))

        self.stats.collections += 1
        self.stats.reclaimed_objects += len(dead)
        self.stats.reclaimed_bytes += reclaimed_bytes
        self.stats.moved_objects += moved_objects
        self.stats.moved_bytes += moved_bytes
        self.stats.total_pause_cycles += pause
        heap.stats.gc_count += 1

        for cb in self.on_gc_end:
            cb(gc_id)

        notification = GcNotification(
            gc_id=gc_id,
            reclaimed_objects=len(dead),
            reclaimed_bytes=reclaimed_bytes,
            moved_objects=moved_objects,
            moved_bytes=moved_bytes,
            live_bytes=top - to_space,
            pause_cycles=pause)
        for cb in self.on_notification:
            cb(notification)
        return notification
