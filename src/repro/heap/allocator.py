"""Heap objects and the bump allocator.

The heap owns every simulated Java object: its identity (``oid``), its
current address range, and its payload.  The interpreter refers to objects
through :class:`Ref` values (object identity, not raw addresses), so a
moving GC only has to rewrite the oid→address table — exactly the
indirection a real JVM gets from updating references during compaction.
Raw addresses surface only in the memory-access stream, which is what the
PMU samples and what DJXPerf's splay tree indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.heap.layout import (
    HEADER_SIZE,
    ELEM_SIZES,
    OBJECT_ALIGNMENT,
    JClass,
    Kind,
    align,
    array_elem_offset,
    array_size,
)


class OutOfMemoryError(Exception):
    """Raised when an allocation cannot be satisfied even after GC."""


class Ref:
    """A reference value: stable object identity across GC moves.

    A plain ``__slots__`` class rather than a frozen dataclass: one Ref
    is built per allocation, and frozen-dataclass construction funnels
    every field through ``object.__setattr__``.  Equality and hashing
    match the frozen-dataclass behaviour (by ``oid``, same-class only).
    """

    __slots__ = ("oid",)

    def __init__(self, oid: int) -> None:
        self.oid = oid

    def __eq__(self, other) -> bool:
        if other.__class__ is Ref:
            return self.oid == other.oid
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.oid,))

    def __repr__(self) -> str:
        return f"Ref#{self.oid}"


class HeapObject:
    """One live object: identity, placement, and payload."""

    __slots__ = ("oid", "addr", "size", "jclass", "elem_kind", "length",
                 "fields", "elements", "finalizable")

    def __init__(self, oid: int, addr: int, size: int,
                 jclass: Optional[JClass] = None,
                 elem_kind: Optional[Kind] = None,
                 length: int = 0) -> None:
        self.oid = oid
        self.addr = addr
        self.size = size
        self.jclass = jclass
        self.elem_kind = elem_kind
        self.length = length
        if jclass is not None:
            self.fields: Optional[Dict[str, object]] = {
                spec.name: spec.kind.default for spec in jclass.all_fields}
            self.elements: Optional[List[object]] = None
        else:
            self.fields = None
            self.elements = [elem_kind.default] * length  # type: ignore[union-attr]
        self.finalizable = True

    @property
    def is_array(self) -> bool:
        return self.elements is not None

    @property
    def type_name(self) -> str:
        if self.jclass is not None:
            return self.jclass.name
        return f"{self.elem_kind.value}[]"  # type: ignore[union-attr]

    @property
    def end(self) -> int:
        return self.addr + self.size

    # -- address computation ------------------------------------------
    def field_address(self, name: str) -> int:
        if self.jclass is None:
            raise TypeError(f"{self.type_name} is an array, not an instance")
        return self.addr + self.jclass.field_offset(name)

    def element_address(self, index: int) -> int:
        if self.elements is None:
            raise TypeError(f"{self.type_name} is not an array")
        if not 0 <= index < self.length:
            raise IndexError(
                f"index {index} out of bounds for length {self.length}")
        return self.addr + HEADER_SIZE + self.elem_kind.elem_bytes * index

    def elem_size(self) -> int:
        if self.elem_kind is None:
            raise TypeError(f"{self.type_name} is not an array")
        return self.elem_kind.elem_bytes

    # -- payload access ------------------------------------------------
    def get_field(self, name: str):
        assert self.fields is not None
        return self.fields[name]

    def set_field(self, name: str, value) -> None:
        assert self.fields is not None
        if name not in self.fields:
            raise KeyError(f"{self.type_name} has no field {name!r}")
        self.fields[name] = value

    def get_element(self, index: int):
        assert self.elements is not None
        if not 0 <= index < self.length:
            raise IndexError(
                f"index {index} out of bounds for length {self.length}")
        return self.elements[index]

    def set_element(self, index: int, value) -> None:
        assert self.elements is not None
        if not 0 <= index < self.length:
            raise IndexError(
                f"index {index} out of bounds for length {self.length}")
        self.elements[index] = value

    def referenced_oids(self) -> Iterator[int]:
        """Oids held in reference-kind slots (for GC tracing)."""
        if self.fields is not None:
            assert self.jclass is not None
            for name in self.jclass.ref_fields():
                value = self.fields[name]
                if isinstance(value, Ref):
                    yield value.oid
        elif self.elem_kind is Kind.REF:
            assert self.elements is not None
            for value in self.elements:
                if isinstance(value, Ref):
                    yield value.oid

    def __repr__(self) -> str:
        return (f"HeapObject(#{self.oid} {self.type_name} "
                f"@{self.addr:#x}+{self.size})")


@dataclass
class HeapStats:
    allocations: int = 0
    allocated_bytes: int = 0
    peak_used: int = 0
    gc_count: int = 0

    def reset(self) -> None:
        self.allocations = 0
        self.allocated_bytes = 0
        self.peak_used = 0
        self.gc_count = 0


#: Signature for allocation observers: (obj, thread_id) -> None.
AllocHook = Callable[[HeapObject, int], None]


class Heap:
    """Bump-allocated heap with pluggable GC.

    Parameters
    ----------
    size:
        Heap capacity in bytes.
    base:
        First address of the heap (page aligned by convention).
    """

    def __init__(self, size: int = 8 * 1024 * 1024, base: int = 0x100000) -> None:
        if size <= 0:
            raise ValueError(f"heap size must be positive, got {size}")
        self.base = base
        self.limit = base + size
        self.size = size
        self._top = base
        self._next_oid = 1
        self.objects: Dict[int, HeapObject] = {}
        self.stats = HeapStats()
        #: Set by the collector when one is attached.
        self.collector = None  # type: Optional[object]
        #: Observers invoked after every successful allocation.
        self.alloc_hooks: List[AllocHook] = []

    # ------------------------------------------------------------------
    @property
    def used(self) -> int:
        return self._top - self.base

    @property
    def free(self) -> int:
        return self.limit - self._top

    def _reserve(self, size: int) -> int:
        """Bump-allocate ``size`` bytes, collecting if needed."""
        # align(size, OBJECT_ALIGNMENT), open-coded: this is the
        # allocation hot path and the alignment is a power of two.
        size = (size + OBJECT_ALIGNMENT - 1) & ~(OBJECT_ALIGNMENT - 1)
        top = self._top + size
        if top > self.limit:
            if self.collector is not None:
                self.collector.collect(reason="allocation failure")
            top = self._top + size
            if top > self.limit:
                raise OutOfMemoryError(
                    f"cannot allocate {size} bytes "
                    f"({self.free} free of {self.size})")
        addr = top - size
        self._top = top
        used = top - self.base
        if used > self.stats.peak_used:
            self.stats.peak_used = used
        return addr

    def _register(self, obj: HeapObject, thread_id: int) -> Ref:
        self.objects[obj.oid] = obj
        self.stats.allocations += 1
        self.stats.allocated_bytes += obj.size
        for hook in self.alloc_hooks:
            hook(obj, thread_id)
        return Ref(obj.oid)

    def allocate_instance(self, jclass: JClass, thread_id: int = 0) -> Ref:
        """Allocate an instance of ``jclass`` (the `new` bytecode)."""
        addr = self._reserve(jclass.instance_size)
        obj = HeapObject(self._next_oid, addr, jclass.instance_size,
                         jclass=jclass)
        self._next_oid += 1
        return self._register(obj, thread_id)

    def allocate_array(self, elem_kind: Kind, length: int,
                       thread_id: int = 0) -> Ref:
        """Allocate an array (`newarray` / `anewarray`)."""
        size = array_size(elem_kind, length)
        addr = self._reserve(size)
        obj = HeapObject(self._next_oid, addr, size,
                         elem_kind=elem_kind, length=length)
        self._next_oid += 1
        return self._register(obj, thread_id)

    # ------------------------------------------------------------------
    def get(self, ref: Ref) -> HeapObject:
        """Dereference; raises on dangling references (collected objects)."""
        obj = self.objects.get(ref.oid)
        if obj is None:
            raise KeyError(f"dangling reference {ref} (object collected?)")
        return obj

    def object_at(self, address: int) -> Optional[HeapObject]:
        """Linear scan for the object whose range encloses ``address``.

        The profiler never uses this (it keeps its own splay tree); it is
        a test oracle for validating interval-tree lookups.
        """
        for obj in self.objects.values():
            if obj.addr <= address < obj.end:
                return obj
        return None

    def live_objects_in_address_order(self) -> List[HeapObject]:
        return sorted(self.objects.values(), key=lambda o: o.addr)

    def __len__(self) -> int:
        return len(self.objects)
