"""Stop-the-world mark-compact garbage collector.

The collector reproduces the two observable behaviours DJXPerf's GC
handling (paper §4.5) is built on:

* **object movement happens through ``memmove``** — every compaction move
  is emitted as a ``(src, dst, size)`` event, which a profiler can
  interpose on exactly as DJXPerf overloads ``memmove`` in OpenJDK;
* **``finalize`` runs before reclamation** — every dead object's
  ``(oid, addr, size)`` is reported before its memory is reused, which is
  how DJXPerf learns to drop splay-tree intervals.

On completion the collector emits an MXBean-style *GC notification*
(the ``GARBAGE_COLLECTION_NOTIFICATION`` analogue) so subscribers can do
their batched bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Set

from repro.heap.allocator import Heap, HeapObject


@dataclass(frozen=True)
class MemmoveEvent:
    """One object move performed during compaction."""

    oid: int
    src: int
    dst: int
    size: int


@dataclass(frozen=True)
class FinalizeEvent:
    """One object about to be reclaimed."""

    oid: int
    addr: int
    size: int
    type_name: str


@dataclass(frozen=True)
class GcNotification:
    """MXBean-style summary emitted after each completed collection."""

    gc_id: int
    reclaimed_objects: int
    reclaimed_bytes: int
    moved_objects: int
    moved_bytes: int
    live_bytes: int
    pause_cycles: int


@dataclass(frozen=True)
class GcCostModel:
    """Cycle cost of a collection (charged as a stop-the-world pause).

    Roughly: tracing costs per live object, compaction costs per byte
    moved, plus a fixed pause for root scanning and bookkeeping.
    """

    base_cycles: int = 2000
    per_live_object: int = 20
    per_moved_byte: float = 0.25
    per_dead_object: int = 10

    def pause(self, live_objects: int, moved_bytes: int,
              dead_objects: int) -> int:
        return int(self.base_cycles
                   + self.per_live_object * live_objects
                   + self.per_moved_byte * moved_bytes
                   + self.per_dead_object * dead_objects)


@dataclass
class GcStats:
    collections: int = 0
    reclaimed_objects: int = 0
    reclaimed_bytes: int = 0
    moved_objects: int = 0
    moved_bytes: int = 0
    total_pause_cycles: int = 0


#: Provides the root set as an iterable of oids.
RootsProvider = Callable[[], Iterable[int]]


class MarkCompactCollector:
    """Sliding mark-compact collector over a :class:`Heap`.

    Attach with ``heap.collector = collector`` (done by the constructor)
    so allocation failures trigger collection automatically.
    """

    def __init__(self, heap: Heap, roots_provider: RootsProvider,
                 cost_model: Optional[GcCostModel] = None) -> None:
        self.heap = heap
        self.roots_provider = roots_provider
        self.cost_model = cost_model or GcCostModel()
        self.stats = GcStats()
        # Event subscribers, in the order DJXPerf consumes them.
        self.on_gc_start: List[Callable[[int], None]] = []
        self.on_memmove: List[Callable[[MemmoveEvent], None]] = []
        self.on_finalize: List[Callable[[FinalizeEvent], None]] = []
        self.on_gc_end: List[Callable[[int], None]] = []
        self.on_notification: List[Callable[[GcNotification], None]] = []
        heap.collector = self

    # ------------------------------------------------------------------
    def _mark(self) -> Set[int]:
        """Trace the object graph from the roots; returns live oids."""
        live: Set[int] = set()
        stack: List[int] = [oid for oid in self.roots_provider()
                            if oid in self.heap.objects]
        while stack:
            oid = stack.pop()
            if oid in live:
                continue
            live.add(oid)
            obj = self.heap.objects.get(oid)
            if obj is None:
                continue
            for child in obj.referenced_oids():
                if child not in live and child in self.heap.objects:
                    stack.append(child)
        return live

    def collect(self, reason: str = "explicit") -> GcNotification:
        """Run one full stop-the-world collection."""
        heap = self.heap
        gc_id = self.stats.collections + 1
        for cb in self.on_gc_start:
            cb(gc_id)

        live = self._mark()

        # Finalize + reclaim the dead.
        dead = [obj for oid, obj in heap.objects.items() if oid not in live]
        reclaimed_bytes = 0
        for obj in dead:
            if obj.finalizable:
                event = FinalizeEvent(obj.oid, obj.addr, obj.size,
                                      obj.type_name)
                for cb in self.on_finalize:
                    cb(event)
            reclaimed_bytes += obj.size
            del heap.objects[obj.oid]

        # Slide the survivors down, preserving address order.
        moved_objects = 0
        moved_bytes = 0
        top = heap.base
        for obj in heap.live_objects_in_address_order():
            if obj.addr != top:
                event = MemmoveEvent(obj.oid, src=obj.addr, dst=top,
                                     size=obj.size)
                obj.addr = top
                moved_objects += 1
                moved_bytes += obj.size
                for cb in self.on_memmove:
                    cb(event)
            top += obj.size
        heap._top = top

        pause = self.cost_model.pause(len(live), moved_bytes, len(dead))

        self.stats.collections += 1
        self.stats.reclaimed_objects += len(dead)
        self.stats.reclaimed_bytes += reclaimed_bytes
        self.stats.moved_objects += moved_objects
        self.stats.moved_bytes += moved_bytes
        self.stats.total_pause_cycles += pause
        heap.stats.gc_count += 1

        for cb in self.on_gc_end:
            cb(gc_id)

        notification = GcNotification(
            gc_id=gc_id,
            reclaimed_objects=len(dead),
            reclaimed_bytes=reclaimed_bytes,
            moved_objects=moved_objects,
            moved_bytes=moved_bytes,
            live_bytes=top - heap.base,
            pause_cycles=pause)
        for cb in self.on_notification:
            cb(notification)
        return notification
