"""Tests for the workload runner helpers (fast workloads only)."""

import pytest

from repro.core import DjxConfig
from repro.workloads import (
    OverheadMeasurement,
    get_workload,
    measure_overhead,
    measure_speedup,
    measure_suite_overheads,
    run_native,
    run_profiled,
)


FAST = "montecarlo"      # sub-second workload used throughout


class TestRunNative:
    def test_returns_machine_result(self):
        result = run_native(get_workload(FAST))
        assert result.wall_cycles > 0
        assert result.total_instructions > 0

    def test_variant_forwarded(self):
        base = run_native(get_workload(FAST), "baseline")
        tiled = run_native(get_workload(FAST), "tiled")
        assert base.wall_cycles != tiled.wall_cycles

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            run_native(get_workload(FAST), "nope")

    def test_deterministic(self):
        r1 = run_native(get_workload(FAST))
        r2 = run_native(get_workload(FAST))
        assert r1.wall_cycles == r2.wall_cycles
        assert r1.l1_misses == r2.l1_misses


class TestRunProfiled:
    def test_produces_analysis(self):
        run = run_profiled(get_workload(FAST),
                           config=DjxConfig(sample_period=32))
        assert run.analysis.total() > 0
        assert run.analysis.sites

    def test_profiler_attached_and_enabled(self):
        run = run_profiled(get_workload(FAST),
                           config=DjxConfig(sample_period=32))
        assert run.profiler.attached


class TestMeasureSpeedup:
    def test_speedup_of_tiling(self):
        speedup, base, opt = measure_speedup(get_workload(FAST))
        assert speedup > 1.0
        assert base.wall_cycles > opt.wall_cycles

    def test_explicit_variants(self):
        speedup, _, _ = measure_speedup(get_workload(FAST),
                                        optimized_variant="baseline",
                                        baseline_variant="baseline")
        assert speedup == pytest.approx(1.0)


class TestMeasureOverhead:
    def test_overhead_measurement_fields(self):
        m = measure_overhead(get_workload("compress"),
                             config=DjxConfig(sample_period=64))
        assert m.runtime_overhead > 1.0
        assert m.memory_overhead >= 1.0
        assert m.native_cycles < m.profiled_cycles
        assert m.profiler_memory > 0

    def test_profiling_does_not_change_program_behaviour(self):
        native = run_native(get_workload(FAST))
        profiled = run_profiled(get_workload(FAST),
                                config=DjxConfig(sample_period=32))
        # Identical memory behaviour: same allocation count & misses.
        assert profiled.result.heap_allocations == native.heap_allocations
        assert profiled.result.l1_misses == native.l1_misses

    def test_zero_native_cycles_rejected_with_context(self):
        m = OverheadMeasurement(name="degenerate", native_cycles=0,
                                profiled_cycles=100, native_peak_memory=0,
                                profiler_memory=0)
        with pytest.raises(ZeroDivisionError, match="degenerate"):
            m.runtime_overhead


class TestVariantCheck:
    def test_check_variant_is_public(self):
        workload = get_workload(FAST)
        workload.check_variant("baseline")       # no raise
        with pytest.raises(ValueError, match="nope"):
            workload.check_variant("nope")


class TestSuiteOverheads:
    NAMES = ["compress", "crypto", "serial"]

    def test_serial_path_returns_in_order(self):
        measurements = measure_suite_overheads(
            self.NAMES, config=DjxConfig(sample_period=64), jobs=1)
        assert [m.name for m in measurements] == self.NAMES
        assert all(m.runtime_overhead > 1.0 for m in measurements)

    def test_parallel_matches_serial(self):
        config = DjxConfig(sample_period=64)
        serial = measure_suite_overheads(self.NAMES, config=config, jobs=1)
        parallel = measure_suite_overheads(self.NAMES, config=config,
                                           jobs=3)
        assert serial == parallel       # deterministic sim, same order

    def test_trace_dir_records_replayable_traces(self, tmp_path):
        from repro.obs.replay import replay_analyze

        config = DjxConfig(sample_period=64)
        measurements = measure_suite_overheads(
            ["compress"], config=config, jobs=1, trace_dir=str(tmp_path))
        trace = measurements[0].trace_path
        assert trace is not None
        analysis = replay_analyze(trace, config)
        assert analysis.total() > 0


class TestSeedPlumbing:
    def test_seed_overrides_machine_config(self):
        workload = get_workload(FAST)
        default = run_native(workload)
        reseeded = run_native(workload, seed=12345)
        again = run_native(workload, seed=12345)
        assert reseeded == again           # deterministic under one seed
        assert default == run_native(workload, seed=workload.machine_config().seed)

    def test_measure_overhead_applies_seed_to_both_arms(self):
        workload = get_workload(FAST)
        config = DjxConfig(sample_period=64)
        a = measure_overhead(workload, config=config, seed=99)
        b = measure_overhead(workload, config=config, seed=99)
        assert a == b

    def test_suite_tasks_carry_seed(self):
        config = DjxConfig(sample_period=64)
        a = measure_suite_overheads(["compress"], config=config, jobs=1,
                                    seed=77)
        b = measure_suite_overheads(["compress"], config=config, jobs=1,
                                    seed=77)
        assert a == b
