"""Tests for the deliberately-fixable workloads."""

import pytest

from repro.jvm import Machine
from repro.optim import AdviceKind, advise
from repro.workloads import get_workload
from repro.workloads.runner import profile_program

FIXABLE = ("unsized-growth", "padded-layout", "boxed-counters",
           "redundant-fill")


@pytest.mark.parametrize("name", FIXABLE)
class TestBuild:
    def test_all_variants_verify_and_agree(self, name):
        workload = get_workload(name)
        outputs = set()
        for variant in workload.variants:
            program = workload.build_verified(variant)
            result = Machine(program, workload.machine_config()).run()
            outputs.add(tuple(result.output))
        # Every variant of one workload prints the same thing — the
        # optimizer's semantic gate depends on it.
        assert len(outputs) == 1


class TestUnsizedGrowth:
    def test_fixed_variant_skips_the_grow_chain(self):
        workload = get_workload("unsized-growth")
        assert workload.expected_grow_calls("baseline") > 0
        assert workload.expected_grow_calls("presized") == 0

    def test_capacity_tracks_buffer_length(self):
        # The capacity local is derived from the buffer itself
        # (arraylength), so rewriting the single allocation constant
        # rewrites the effective capacity too.  A desync here makes
        # the presize transform incoherent — see the optimizer tests.
        workload = get_workload("unsized-growth")
        program = workload.build_verified("baseline")
        fill = program.methods["fill"]
        from repro.jvm import Op

        assert any(ins.op is Op.ARRAYLENGTH for ins in fill.code)

    def test_advice_flags_growth_site(self):
        workload = get_workload("unsized-growth")
        run = profile_program(workload.build_verified("baseline"),
                              workload.machine_config())
        kinds = {a.kind for a in advise(run.analysis)}
        assert AdviceKind.GROW_INITIAL_CAPACITY in kinds


class TestPlantedAdvice:
    def test_padded_layout_flags_hot_fields(self):
        workload = get_workload("padded-layout")
        run = profile_program(workload.build_verified("baseline"),
                              workload.machine_config())
        assert advise(run.analysis)

    def test_boxed_counters_flags_box_allocation(self):
        from repro.core import DjxConfig

        workload = get_workload("boxed-counters")
        run = profile_program(workload.build_verified("baseline"),
                              workload.machine_config(),
                              config=DjxConfig(size_threshold=0))
        kinds = {a.kind for a in advise(run.analysis)}
        assert AdviceKind.HOIST_ALLOCATION in kinds

    def test_redundant_fill_flags_dead_stores(self):
        workload = get_workload("redundant-fill")
        run = profile_program(workload.build_verified("baseline"),
                              workload.machine_config(),
                              family="redundancy")
        kinds = {a.kind for a in advise(run.analysis)}
        assert AdviceKind.ELIMINATE_DEAD_STORES in kinds
