"""Tests for the workload builder DSL and the stream natives."""

import pytest

from repro.heap.layout import Kind
from repro.jvm import JProgram, Machine, MethodBuilder, TrapError
from repro.workloads.dsl import (
    LocalVar,
    consume,
    for_range,
    stream_read_array,
    stream_write_array,
    sum_array,
)


def run(builder, statics=None):
    p = JProgram()
    p.add_builder(builder)
    p.add_entry(builder.method_name)
    if statics:
        p.statics.update(statics)
    machine = Machine(p)
    return machine, machine.run()


class TestForRange:
    def test_counts_iterations(self):
        b = MethodBuilder("C", "m")
        b.iconst(0).store(1)
        for_range(b, 0, 7, lambda b: b.iinc(1, 1))
        b.load(1).native("print", 1, False).ret()
        _, result = run(b)
        assert result.output == ["7"]

    def test_step(self):
        b = MethodBuilder("C", "m")
        b.iconst(0).store(1)
        for_range(b, 0, 10, lambda b: b.iinc(1, 1), step=3)
        b.load(1).native("print", 1, False).ret()
        _, result = run(b)
        assert result.output == ["4"]    # 0,3,6,9

    def test_start_offset(self):
        b = MethodBuilder("C", "m")
        b.iconst(0).store(1)
        for_range(b, 0, 5, lambda b: b.iinc(1, 1), start=3)
        b.load(1).native("print", 1, False).ret()
        _, result = run(b)
        assert result.output == ["2"]    # 3,4

    def test_local_var_bound(self):
        b = MethodBuilder("C", "m")
        b.iconst(4).store(2)             # bound in a local
        b.iconst(0).store(1)
        for_range(b, 0, LocalVar(2), lambda b: b.iinc(1, 1))
        b.load(1).native("print", 1, False).ret()
        _, result = run(b)
        assert result.output == ["4"]

    def test_zero_trip_loop(self):
        b = MethodBuilder("C", "m")
        b.iconst(0).store(1)
        for_range(b, 0, 0, lambda b: b.iinc(1, 1))
        b.load(1).native("print", 1, False).ret()
        _, result = run(b)
        assert result.output == ["0"]


class TestArrayHelpers:
    def test_sum_array(self):
        b = MethodBuilder("C", "m")
        b.iconst(5).newarray(Kind.INT).store(0)
        stream_write_array(b, 0, 5, 1, value=3)
        sum_array(b, 0, 5, 1, 2)
        b.load(2).native("print", 1, False).ret()
        _, result = run(b)
        assert result.output == ["15"]

    def test_stream_read_with_stride(self):
        b = MethodBuilder("C", "m")
        b.iconst(8).newarray(Kind.INT).store(0)
        stream_read_array(b, 0, 8, 1, stride=2)
        b.ret()
        _, result = run(b)
        # 4 element loads (+zeroing stores), at least.
        assert result.loads >= 4

    def test_consume_goes_to_blackhole(self):
        b = MethodBuilder("C", "m")
        b.iconst(9).store(0)
        consume(b, 0)
        b.ret()
        run(b)   # must not trap


class TestStreamNatives:
    def test_stream_array_touches_every_line(self):
        b = MethodBuilder("C", "m")
        b.iconst(64).newarray(Kind.INT).store(0)    # 512B = 8 lines
        b.load(0).native("stream_array", 1, False, 1)
        b.ret()
        machine, result = run(b)
        assert result.loads == 8

    def test_stream_array_passes_multiply(self):
        b = MethodBuilder("C", "m")
        b.iconst(64).newarray(Kind.INT).store(0)
        b.load(0).native("stream_array", 1, False, 3)
        b.ret()
        _, result = run(b)
        assert result.loads == 24

    def test_stream_array_write_mode(self):
        b = MethodBuilder("C", "m")
        b.iconst(64).newarray(Kind.INT).store(0)
        b.load(0).native("stream_array", 1, False, 1, 1)
        b.ret()
        _, result = run(b)
        assert result.loads == 0
        assert result.stores >= 8

    def test_stream_range_subset(self):
        b = MethodBuilder("C", "m")
        b.iconst(64).newarray(Kind.INT).store(0)
        b.load(0).iconst(8).iconst(16).native("stream_range", 3, False, 1)
        b.ret()
        _, result = run(b)
        assert result.loads == 2    # 16 ints = 128B = 2 lines

    def test_stream_range_bounds_checked(self):
        b = MethodBuilder("C", "m")
        b.iconst(8).newarray(Kind.INT).store(0)
        b.load(0).iconst(4).iconst(8).native("stream_range", 3, False, 1)
        b.ret()
        with pytest.raises(TrapError, match="out of bounds"):
            run(b)

    def test_stream_charges_compute_cycles(self):
        def cycles_with(cpe):
            b = MethodBuilder("C", "m")
            b.iconst(64).newarray(Kind.INT).store(0)
            b.load(0).native("stream_array", 1, False, 1, 0, cpe)
            b.ret()
            _, result = run(b)
            return result.wall_cycles

        assert cycles_with(50) - cycles_with(0) == 64 * 50

    def test_zero_length_stream_is_noop(self):
        b = MethodBuilder("C", "m")
        b.iconst(8).newarray(Kind.INT).store(0)
        b.load(0).iconst(0).iconst(0).native("stream_range", 3, False, 1)
        b.ret()
        run(b)
