"""Tests for the workload registry and common workload invariants."""

import pytest

from repro.jvm import verify_program
from repro.workloads import get_workload, workload_names
from repro.workloads.base import Workload, register


class TestRegistry:
    def test_all_expected_workloads_registered(self):
        names = workload_names()
        # Table 1 rows
        for expected in ("batik-makeroom", "lusearch-collector",
                         "objectlayout", "findbugs", "ranklib", "cache2k",
                         "samoa", "commons-collections", "scala-stm-bench7",
                         "scimark-fft", "montecarlo", "moldyn",
                         "eclipse-collections", "npb-sp", "apache-druid"):
            assert expected in names
        # Table 2 + accuracy + Figure 4 families
        assert sum(1 for n in names if n.startswith("insig-")) == 9
        assert sum(1 for n in names if n.startswith("acc-")) == 5
        assert "mnemonics" in names and "compress" in names

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("no-such-bench")

    def test_duplicate_registration_rejected(self):
        class Dup(Workload):
            name = "batik-makeroom"

            def build(self, variant="baseline"):
                raise NotImplementedError

        with pytest.raises(ValueError, match="duplicate"):
            register(Dup)

    def test_unnamed_workload_rejected(self):
        class NoName(Workload):
            def build(self, variant="baseline"):
                raise NotImplementedError

        with pytest.raises(ValueError):
            register(NoName)


class TestWorkloadInvariants:
    @pytest.mark.parametrize("name", workload_names())
    def test_every_variant_builds_and_verifies(self, name):
        w = get_workload(name)
        for variant in w.variants:
            verify_program(w.build(variant))

    @pytest.mark.parametrize("name", ["batik-makeroom", "scimark-fft",
                                      "apache-druid"])
    def test_unknown_variant_rejected(self, name):
        w = get_workload(name)
        with pytest.raises(ValueError, match="unknown variant"):
            w.build("bogus")

    def test_baseline_and_optimized_variant_names(self):
        w = get_workload("objectlayout")
        assert w.baseline_variant == "baseline"
        assert w.optimized_variant == "hoisted"

    def test_single_variant_has_no_optimized(self):
        w = get_workload("acc-luindex")
        with pytest.raises(ValueError):
            _ = w.optimized_variant

    @pytest.mark.parametrize("name", workload_names())
    def test_metadata_present(self, name):
        w = get_workload(name)
        assert w.paper_ref
        assert w.description
