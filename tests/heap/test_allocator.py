"""Unit tests for the heap allocator and object records."""

import pytest

from repro.heap import (
    FieldSpec,
    Heap,
    JClass,
    Kind,
    OutOfMemoryError,
    Ref,
)

POINT = JClass("Point", [FieldSpec("x"), FieldSpec("y")])
NODE = JClass("Node", [FieldSpec("next", Kind.REF), FieldSpec("value")])


class TestAllocation:
    def test_instance_allocation(self):
        heap = Heap(size=4096)
        ref = heap.allocate_instance(POINT)
        obj = heap.get(ref)
        assert obj.jclass is POINT
        assert obj.size == POINT.instance_size
        assert obj.addr >= heap.base

    def test_array_allocation(self):
        heap = Heap(size=4096)
        ref = heap.allocate_array(Kind.FLOAT, 8)
        obj = heap.get(ref)
        assert obj.is_array
        assert obj.length == 8
        assert obj.get_element(0) == 0.0

    def test_addresses_are_disjoint_and_increasing(self):
        heap = Heap(size=8192)
        a = heap.get(heap.allocate_instance(POINT))
        b = heap.get(heap.allocate_instance(POINT))
        assert a.end <= b.addr

    def test_distinct_oids(self):
        heap = Heap(size=4096)
        r1 = heap.allocate_instance(POINT)
        r2 = heap.allocate_instance(POINT)
        assert r1.oid != r2.oid

    def test_oom_without_collector(self):
        heap = Heap(size=256)
        heap.allocate_array(Kind.INT, 16)
        with pytest.raises(OutOfMemoryError):
            heap.allocate_array(Kind.INT, 16)

    def test_used_and_free_track_bump_pointer(self):
        heap = Heap(size=4096)
        assert heap.used == 0
        heap.allocate_instance(POINT)
        assert heap.used == POINT.instance_size
        assert heap.free == 4096 - POINT.instance_size

    def test_peak_used_recorded(self):
        heap = Heap(size=4096)
        heap.allocate_array(Kind.INT, 100)
        assert heap.stats.peak_used == heap.used

    def test_alloc_hooks_invoked(self):
        heap = Heap(size=4096)
        seen = []
        heap.alloc_hooks.append(lambda obj, tid: seen.append((obj.oid, tid)))
        ref = heap.allocate_instance(POINT, thread_id=7)
        assert seen == [(ref.oid, 7)]

    def test_invalid_heap_size(self):
        with pytest.raises(ValueError):
            Heap(size=0)


class TestFieldAccess:
    def test_field_roundtrip(self):
        heap = Heap(size=4096)
        obj = heap.get(heap.allocate_instance(POINT))
        obj.set_field("x", 42)
        assert obj.get_field("x") == 42

    def test_unknown_field_rejected(self):
        heap = Heap(size=4096)
        obj = heap.get(heap.allocate_instance(POINT))
        with pytest.raises(KeyError):
            obj.set_field("nope", 1)

    def test_field_address_within_object(self):
        heap = Heap(size=4096)
        obj = heap.get(heap.allocate_instance(POINT))
        assert obj.addr < obj.field_address("x") < obj.end
        assert obj.field_address("y") == obj.field_address("x") + 8

    def test_field_address_on_array_rejected(self):
        heap = Heap(size=4096)
        obj = heap.get(heap.allocate_array(Kind.INT, 2))
        with pytest.raises(TypeError):
            obj.field_address("x")


class TestElementAccess:
    def test_element_roundtrip(self):
        heap = Heap(size=4096)
        obj = heap.get(heap.allocate_array(Kind.INT, 4))
        obj.set_element(2, 99)
        assert obj.get_element(2) == 99

    def test_bounds_checked(self):
        heap = Heap(size=4096)
        obj = heap.get(heap.allocate_array(Kind.INT, 4))
        with pytest.raises(IndexError):
            obj.get_element(4)
        with pytest.raises(IndexError):
            obj.set_element(-1, 0)
        with pytest.raises(IndexError):
            obj.element_address(4)

    def test_element_addresses_stride_by_elem_size(self):
        heap = Heap(size=4096)
        obj = heap.get(heap.allocate_array(Kind.FLOAT, 4))
        assert obj.element_address(1) - obj.element_address(0) == obj.elem_size()

    def test_element_access_on_instance_rejected(self):
        heap = Heap(size=4096)
        obj = heap.get(heap.allocate_instance(POINT))
        with pytest.raises(TypeError):
            obj.element_address(0)


class TestReferences:
    def test_dangling_ref_raises(self):
        heap = Heap(size=4096)
        with pytest.raises(KeyError):
            heap.get(Ref(999))

    def test_referenced_oids_from_fields(self):
        heap = Heap(size=4096)
        a = heap.allocate_instance(NODE)
        b = heap.allocate_instance(NODE)
        heap.get(a).set_field("next", b)
        assert list(heap.get(a).referenced_oids()) == [b.oid]

    def test_referenced_oids_from_ref_array(self):
        heap = Heap(size=4096)
        arr = heap.get(heap.allocate_array(Kind.REF, 3))
        p = heap.allocate_instance(POINT)
        arr.set_element(1, p)
        assert list(arr.referenced_oids()) == [p.oid]

    def test_int_array_has_no_referenced_oids(self):
        heap = Heap(size=4096)
        arr = heap.get(heap.allocate_array(Kind.INT, 3))
        assert list(arr.referenced_oids()) == []


class TestObjectAt:
    def test_object_at_finds_encloser(self):
        heap = Heap(size=4096)
        obj = heap.get(heap.allocate_array(Kind.INT, 8))
        assert heap.object_at(obj.addr) is obj
        assert heap.object_at(obj.addr + obj.size - 1) is obj

    def test_object_at_miss_returns_none(self):
        heap = Heap(size=4096)
        heap.allocate_instance(POINT)
        assert heap.object_at(heap.limit + 100) is None
