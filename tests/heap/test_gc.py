"""Unit tests for the mark-compact collector."""

import pytest

from repro.heap import (
    FieldSpec,
    GcCostModel,
    Heap,
    JClass,
    Kind,
    MarkCompactCollector,
    OutOfMemoryError,
)

POINT = JClass("Point", [FieldSpec("x"), FieldSpec("y")])
NODE = JClass("Node", [FieldSpec("next", Kind.REF), FieldSpec("value")])


class RootSet:
    """Mutable root set used by tests as a roots provider."""

    def __init__(self):
        self.refs = []

    def __call__(self):
        return [r.oid for r in self.refs]


def make_heap(size=4096):
    heap = Heap(size=size)
    roots = RootSet()
    collector = MarkCompactCollector(heap, roots)
    return heap, roots, collector


class TestReclamation:
    def test_unreachable_objects_reclaimed(self):
        heap, roots, collector = make_heap()
        heap.allocate_instance(POINT)            # unreachable
        kept = heap.allocate_instance(POINT)
        roots.refs.append(kept)
        note = collector.collect()
        assert note.reclaimed_objects == 1
        assert len(heap) == 1
        assert heap.get(kept) is not None

    def test_reachable_through_field_chain_survives(self):
        heap, roots, collector = make_heap()
        a = heap.allocate_instance(NODE)
        b = heap.allocate_instance(NODE)
        c = heap.allocate_instance(NODE)
        heap.get(a).set_field("next", b)
        heap.get(b).set_field("next", c)
        roots.refs.append(a)
        collector.collect()
        assert len(heap) == 3

    def test_reachable_through_ref_array_survives(self):
        heap, roots, collector = make_heap()
        arr = heap.allocate_array(Kind.REF, 2)
        p = heap.allocate_instance(POINT)
        heap.get(arr).set_element(0, p)
        roots.refs.append(arr)
        collector.collect()
        assert len(heap) == 2

    def test_cycle_is_collected_when_unrooted(self):
        heap, roots, collector = make_heap()
        a = heap.allocate_instance(NODE)
        b = heap.allocate_instance(NODE)
        heap.get(a).set_field("next", b)
        heap.get(b).set_field("next", a)
        note = collector.collect()
        assert note.reclaimed_objects == 2
        assert len(heap) == 0

    def test_finalize_emitted_before_reclaim(self):
        heap, roots, collector = make_heap()
        dead = heap.allocate_instance(POINT)
        dead_obj = heap.get(dead)
        events = []
        collector.on_finalize.append(events.append)
        collector.collect()
        assert len(events) == 1
        assert events[0].oid == dead.oid
        assert events[0].addr == dead_obj.addr
        assert events[0].size == dead_obj.size

    def test_non_finalizable_objects_skip_finalize_event(self):
        heap, roots, collector = make_heap()
        dead = heap.allocate_instance(POINT)
        heap.get(dead).finalizable = False
        events = []
        collector.on_finalize.append(events.append)
        note = collector.collect()
        assert events == []
        assert note.reclaimed_objects == 1


class TestCompaction:
    def test_survivor_slides_down_and_emits_memmove(self):
        heap, roots, collector = make_heap()
        heap.allocate_array(Kind.INT, 16)        # dead, at heap base
        kept = heap.allocate_instance(POINT)
        old_addr = heap.get(kept).addr
        roots.refs.append(kept)
        moves = []
        collector.on_memmove.append(moves.append)
        collector.collect()
        new_addr = heap.get(kept).addr
        assert new_addr == heap.base
        assert new_addr < old_addr
        assert len(moves) == 1
        assert moves[0].src == old_addr
        assert moves[0].dst == new_addr
        assert moves[0].size == heap.get(kept).size

    def test_unmoved_objects_emit_no_memmove(self):
        heap, roots, collector = make_heap()
        kept = heap.allocate_instance(POINT)     # already at base
        roots.refs.append(kept)
        moves = []
        collector.on_memmove.append(moves.append)
        collector.collect()
        assert moves == []

    def test_address_order_preserved(self):
        heap, roots, collector = make_heap()
        heap.allocate_array(Kind.INT, 8)         # dead
        a = heap.allocate_instance(POINT)
        heap.allocate_array(Kind.INT, 8)         # dead
        b = heap.allocate_instance(POINT)
        roots.refs.extend([a, b])
        collector.collect()
        assert heap.get(a).addr < heap.get(b).addr

    def test_compaction_frees_space_for_new_allocations(self):
        heap, roots, collector = make_heap(size=1024)
        # Fill the heap with garbage, then allocate: GC should kick in.
        for _ in range(8):
            heap.allocate_array(Kind.INT, 12)
        kept = heap.allocate_array(Kind.INT, 12)
        roots.refs.append(kept)
        big = heap.allocate_array(Kind.INT, 64)  # triggers collection
        assert heap.get(big) is not None
        assert collector.stats.collections == 1

    def test_oom_when_live_set_too_large(self):
        heap, roots, collector = make_heap(size=512)
        kept = heap.allocate_array(Kind.INT, 40)
        roots.refs.append(kept)
        with pytest.raises(OutOfMemoryError):
            heap.allocate_array(Kind.INT, 40)

    def test_data_survives_moves(self):
        heap, roots, collector = make_heap()
        heap.allocate_array(Kind.INT, 16)        # dead
        kept = heap.allocate_array(Kind.INT, 4)
        heap.get(kept).set_element(3, 1234)
        roots.refs.append(kept)
        collector.collect()
        assert heap.get(kept).get_element(3) == 1234


class TestNotificationsAndStats:
    def test_gc_start_end_ordering(self):
        heap, roots, collector = make_heap()
        trace = []
        collector.on_gc_start.append(lambda gc_id: trace.append(("start", gc_id)))
        collector.on_gc_end.append(lambda gc_id: trace.append(("end", gc_id)))
        collector.on_notification.append(lambda n: trace.append(("note", n.gc_id)))
        collector.collect()
        assert trace == [("start", 1), ("end", 1), ("note", 1)]

    def test_notification_counts(self):
        heap, roots, collector = make_heap()
        heap.allocate_array(Kind.INT, 16)        # dead at base
        kept = heap.allocate_instance(POINT)
        roots.refs.append(kept)
        note = collector.collect()
        assert note.reclaimed_objects == 1
        assert note.moved_objects == 1
        assert note.live_bytes == heap.get(kept).size

    def test_pause_cycles_grow_with_work(self):
        model = GcCostModel()
        small = model.pause(live_objects=1, moved_bytes=0, dead_objects=0)
        large = model.pause(live_objects=100, moved_bytes=10000, dead_objects=50)
        assert large > small

    def test_stats_accumulate_over_collections(self):
        heap, roots, collector = make_heap()
        heap.allocate_instance(POINT)
        collector.collect()
        heap.allocate_instance(POINT)
        collector.collect()
        assert collector.stats.collections == 2
        assert collector.stats.reclaimed_objects == 2
        assert heap.stats.gc_count == 2
