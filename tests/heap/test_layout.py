"""Unit tests for object layout."""

import pytest

from repro.heap.layout import (
    HEADER_SIZE,
    FieldSpec,
    JClass,
    Kind,
    align,
    array_elem_offset,
    array_size,
)


class TestAlign:
    def test_already_aligned(self):
        assert align(16) == 16

    def test_rounds_up(self):
        assert align(17) == 24

    def test_zero(self):
        assert align(0) == 0


class TestJClass:
    def test_field_offsets_follow_header(self):
        cls = JClass("Point", [FieldSpec("x"), FieldSpec("y")])
        assert cls.field_offset("x") == HEADER_SIZE
        assert cls.field_offset("y") == HEADER_SIZE + 8

    def test_instance_size_aligned(self):
        cls = JClass("One", [FieldSpec("a")])
        assert cls.instance_size == align(HEADER_SIZE + 8)

    def test_empty_class_is_header_only(self):
        assert JClass("Empty").instance_size == HEADER_SIZE

    def test_unknown_field_raises(self):
        cls = JClass("Point", [FieldSpec("x")])
        with pytest.raises(KeyError):
            cls.field_offset("z")
        with pytest.raises(KeyError):
            cls.field_kind("z")

    def test_field_kinds(self):
        cls = JClass("Mixed", [FieldSpec("i", Kind.INT),
                               FieldSpec("f", Kind.FLOAT),
                               FieldSpec("r", Kind.REF)])
        assert cls.field_kind("i") is Kind.INT
        assert cls.field_kind("r") is Kind.REF
        assert cls.ref_fields() == ["r"]

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            JClass("Dup", [FieldSpec("x"), FieldSpec("x")])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            JClass("")


class TestInheritance:
    def test_subclass_inherits_fields_and_offsets(self):
        base = JClass("Base", [FieldSpec("a")])
        sub = JClass("Sub", [FieldSpec("b")], superclass=base)
        assert sub.field_offset("a") == base.field_offset("a")
        assert sub.field_offset("b") == HEADER_SIZE + 8
        assert sub.instance_size >= base.instance_size

    def test_redeclaring_inherited_field_rejected(self):
        base = JClass("Base", [FieldSpec("a")])
        with pytest.raises(ValueError):
            JClass("Sub", [FieldSpec("a")], superclass=base)

    def test_is_subclass_of(self):
        base = JClass("Base")
        mid = JClass("Mid", superclass=base)
        sub = JClass("Sub", superclass=mid)
        assert sub.is_subclass_of(base)
        assert sub.is_subclass_of(sub)
        assert not base.is_subclass_of(sub)


class TestArrayLayout:
    def test_array_size_includes_header(self):
        assert array_size(Kind.INT, 4) == align(HEADER_SIZE + 32)

    def test_zero_length_array(self):
        assert array_size(Kind.REF, 0) == HEADER_SIZE

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            array_size(Kind.INT, -1)

    def test_elem_offsets_are_contiguous(self):
        assert array_elem_offset(Kind.FLOAT, 0) == HEADER_SIZE
        assert (array_elem_offset(Kind.FLOAT, 3)
                - array_elem_offset(Kind.FLOAT, 2)) == 8


class TestKindDefaults:
    def test_defaults(self):
        assert Kind.INT.default == 0
        assert Kind.FLOAT.default == 0.0
        assert Kind.REF.default is None
