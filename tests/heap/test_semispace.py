"""Tests for the semispace copying collector."""

import pytest

from repro.core import DJXPerf, DjxConfig
from repro.heap import (
    FieldSpec,
    Heap,
    JClass,
    Kind,
    OutOfMemoryError,
    SemispaceCollector,
)
from repro.heap.layout import Kind
from repro.jvm import JProgram, Machine, MachineConfig, MethodBuilder

from repro.workloads.base import sim_machine

from tests.jvm.helpers import counting_loop

POINT = JClass("Point", [FieldSpec("x"), FieldSpec("y")])


class RootSet:
    def __init__(self):
        self.refs = []

    def __call__(self):
        return [r.oid for r in self.refs]


def make_heap(size=8192):
    heap = Heap(size=size)
    roots = RootSet()
    collector = SemispaceCollector(heap, roots)
    return heap, roots, collector


class TestSemispace:
    def test_allocation_limited_to_half(self):
        heap, roots, collector = make_heap(size=8192)
        assert heap.limit - heap.base == 4096

    def test_every_survivor_moves_on_every_collection(self):
        heap, roots, collector = make_heap()
        refs = [heap.allocate_instance(POINT) for _ in range(5)]
        roots.refs.extend(refs)
        moves = []
        collector.on_memmove.append(moves.append)
        note = collector.collect()
        assert note.moved_objects == 5
        assert len(moves) == 5
        # Survivors now live in the other space.
        for ref in refs:
            assert heap.get(ref).addr >= collector.active_space

    def test_flip_alternates_spaces(self):
        heap, roots, collector = make_heap()
        first = collector.active_space
        collector.collect()
        second = collector.active_space
        collector.collect()
        assert collector.active_space == first
        assert second != first

    def test_dead_objects_finalized_not_copied(self):
        heap, roots, collector = make_heap()
        heap.allocate_instance(POINT)            # dead
        kept = heap.allocate_instance(POINT)
        roots.refs.append(kept)
        events = []
        collector.on_finalize.append(events.append)
        note = collector.collect()
        assert note.reclaimed_objects == 1
        assert len(events) == 1
        assert len(heap) == 1

    def test_data_survives_copies(self):
        heap, roots, collector = make_heap()
        kept = heap.allocate_array(Kind.INT, 8)
        heap.get(kept).set_element(3, 777)
        roots.refs.append(kept)
        collector.collect()
        collector.collect()
        assert heap.get(kept).get_element(3) == 777

    def test_allocation_failure_triggers_collection(self):
        heap, roots, collector = make_heap(size=4096)   # 2KB usable
        for _ in range(60):
            heap.allocate_array(Kind.INT, 6)            # garbage
        assert collector.stats.collections > 0

    def test_oom_when_survivors_exceed_space(self):
        heap, roots, collector = make_heap(size=2048)   # 1KB usable
        kept = heap.allocate_array(Kind.INT, 60)        # ~500B
        roots.refs.append(kept)
        with pytest.raises(OutOfMemoryError):
            heap.allocate_array(Kind.INT, 80)

    def test_unknown_policy_rejected(self):
        p = JProgram()
        b = MethodBuilder("C", "main")
        b.ret()
        p.add_builder(b)
        p.add_entry("main")
        with pytest.raises(ValueError, match="gc_policy"):
            Machine(p, MachineConfig(gc_policy="zgc"))


class TestProfilerUnderSemispace:
    """4.5's claim: the handling works for any collector."""

    def bloat_program(self):
        p = JProgram()
        b = MethodBuilder("App", "main", first_line=1)
        b.line(2).iconst(2048).newarray(Kind.INT).store(0)   # live victim
        def body(b):
            b.line(5).iconst(512).newarray(Kind.INT).store(1)
            b.line(6).load(0).native("stream_array", 1, False, 1)
        counting_loop(b, 60, 2, body)
        b.ret()
        p.add_builder(b)
        p.add_entry("main")
        return p

    @pytest.mark.parametrize("policy", ["mark-compact", "semispace"])
    def test_attribution_survives_either_collector(self, policy):
        profiler = DJXPerf(DjxConfig(sample_period=32, size_threshold=0))
        machine = Machine(profiler.instrument(self.bloat_program()),
                          sim_machine(heap_size=128 * 1024,
                                      gc_policy=policy))
        profiler.attach(machine)
        result = machine.run()
        assert result.gc_collections > 0
        analysis = profiler.analyze()
        victim = analysis.site_at("App", "main", line=2)
        assert victim is not None
        assert analysis.share(victim) > 0.5
        assert analysis.coverage() > 0.95

    def test_semispace_stresses_relocation_map_harder(self):
        def relocations(policy):
            profiler = DJXPerf(DjxConfig(sample_period=32,
                                         size_threshold=0))
            machine = Machine(profiler.instrument(self.bloat_program()),
                              MachineConfig(heap_size=128 * 1024,
                                            gc_policy=policy))
            profiler.attach(machine)
            machine.run()
            return profiler.agent.stats.relocations_applied

        assert relocations("semispace") > relocations("mark-compact")

    def test_program_output_identical_across_policies(self):
        def run(policy):
            p = JProgram()
            b = MethodBuilder("C", "main")
            b.iconst(0).store(1)
            def body(b):
                b.iconst(64).newarray(Kind.INT).store(2)
                b.load(2).iconst(0).load(0).astore()
                b.load(1).load(2).iconst(0).aload().add().store(1)
            counting_loop(b, 100, 0, body)
            b.load(1).native("print", 1, False).ret()
            p.add_builder(b)
            p.add_entry("main")
            return Machine(p, MachineConfig(heap_size=64 * 1024,
                                            gc_policy=policy)).run()

        assert run("mark-compact").output == run("semispace").output
