"""Differential equivalence: skip-ahead vs per-access PMU counting.

Skip-ahead counting (bulk countdown decrements, overflow-only sample
path, chunked ``touch_range`` walks) is a pure performance
transformation: for every suite workload, across sampling periods, both
counting modes must produce the same MachineResult, the same sampled
event stream, the same DJXPerf ranking, and — with a trace collector
attached — byte-identical recorded traces.  The periods cover the paper
default (64), a prime (13, so bulk-walk chunk boundaries never align
with the period), and 1, where *every* counted event overflows and the
fast path degenerates to the sample path.
"""

import dataclasses
import gzip
import json

import pytest

from repro.core import DjxConfig
from repro.core.report import render_report
from repro.workloads import get_workload, run_profiled
from repro.workloads.suite import suite_names

#: Paper-default, a prime, and overflow-on-every-count.
PERIODS = (64, 13, 1)


def _run_arm(workload, skip_ahead, period, tmp_path):
    mc = dataclasses.replace(workload.machine_config(),
                             skip_ahead=skip_ahead)
    path = str(tmp_path / f"{workload.name}-{period}-{skip_ahead}.jsonl.gz")
    run = run_profiled(workload, config=DjxConfig(sample_period=period),
                       machine_config=mc, trace_path=path)
    with gzip.open(path, "rb") as fh:
        trace = fh.read()
    return run, trace


def _sample_records(trace_bytes):
    """Decode the trace's SampleEvent records, in stream order."""
    records = []
    for line in trace_bytes.splitlines():
        rec = json.loads(line)
        if isinstance(rec, list) and rec and rec[0] == "sm":
            records.append(rec)
    return records


class TestEveryWorkload:
    @pytest.mark.parametrize("name", suite_names())
    def test_skip_ahead_is_invisible(self, name, tmp_path):
        workload = get_workload(name)
        for period in PERIODS:
            skip_run, skip_trace = _run_arm(workload, True, period,
                                            tmp_path)
            ref_run, ref_trace = _run_arm(workload, False, period,
                                          tmp_path)
            assert skip_run.result == ref_run.result, \
                f"{name} period={period}: MachineResult diverged"
            assert render_report(skip_run.analysis, top=10) == \
                render_report(ref_run.analysis, top=10), \
                f"{name} period={period}: analyzer top-10 diverged"
            skip_samples = _sample_records(skip_trace)
            assert skip_samples == _sample_records(ref_trace), \
                f"{name} period={period}: sample streams diverged"
            assert skip_trace == ref_trace, \
                f"{name} period={period}: recorded traces diverged"
            if period == 1:
                # Period 1 must actually exercise the overflow path.
                assert skip_samples, \
                    f"{name}: no samples at period=1"
