"""End-to-end smoke tests: full pipeline on real workloads + examples."""

import os
import runpy
import sys

import pytest

from repro.core import DjxConfig
from repro.workloads import get_workload, run_profiled

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


class TestFullPipeline:
    @pytest.mark.parametrize("name,expected_top", [
        ("objectlayout", ("Objectlayout", "run", 292)),
        ("scimark-fft", ("FFT", "transform_internal", 166)),
        ("eclipse-collections", ("Interval", "toArray", 758)),
    ])
    def test_profile_identifies_expected_object(self, name, expected_top):
        run = run_profiled(get_workload(name),
                           config=DjxConfig(sample_period=32))
        top = run.analysis.top_sites(1)[0]
        cls, method, line = expected_top
        assert (top.leaf.class_name, top.leaf.method_name,
                top.leaf.line) == (cls, method, line)
        # The pipeline accounts for every sample it took.
        assert run.analysis.coverage() > 0.9

    def test_profiles_roundtrip_through_files(self, tmp_path):
        import json

        run = run_profiled(get_workload("montecarlo"),
                           config=DjxConfig(sample_period=64))
        paths = run.profiler.dump_profiles(str(tmp_path))
        assert paths
        total = 0
        for path in paths:
            with open(path) as fp:
                data = json.load(fp)
            total += sum(data["total_samples"].values())
        assert total == run.analysis.total()


class TestExamples:
    """Every example script must run cleanly (they are documentation)."""

    @pytest.mark.parametrize("script", [
        "quickstart.py",
        "attach_mode.py",
        "fft_locality.py",
        "memory_bloat_hunt.py",
        "numa_tuning.py",
    ])
    def test_example_runs(self, script, capsys):
        path = os.path.join(EXAMPLES, script)
        runpy.run_path(path, run_name="__main__")
        out = capsys.readouterr().out
        assert out.strip()
