"""Differential equivalence: fused superinstructions vs plain dispatch.

Superinstruction fusion (block-compiled closures, batched memory walks,
bulk PMU skip-ahead inside guarded blocks) is a pure performance
transformation: for every suite workload and for the engine-bound
kernels, across sampling periods, the fused engine and the per-handler
compiled-dispatch engine must produce the same MachineResult, the same
DJXPerf ranking, and — with a trace collector attached — byte-identical
recorded traces.  Periods cover the paper default (64), a prime (13, so
bulk-budget countdowns never align with block sizes), and 1, where every
counted event overflows, the bulk-budget guard can never pass, and every
observed fused block takes the per-handler bailout chain.
"""

import dataclasses
import gzip

import pytest

from repro.core import DjxConfig
from repro.core.report import render_report
from repro.workloads import get_workload, run_profiled
from repro.workloads.kernels import kernel_names
from repro.workloads.suite import suite_names

#: Paper-default, a prime, and overflow-on-every-count (guard always
#: fails: the whole run executes through the bailout chain).
PERIODS = (64, 13, 1)


def _run_arm(workload, fused, period, tmp_path):
    mc = dataclasses.replace(workload.machine_config(), fused=fused)
    path = str(tmp_path / f"{workload.name}-{period}-{fused}.jsonl.gz")
    run = run_profiled(workload, config=DjxConfig(sample_period=period),
                       machine_config=mc, trace_path=path)
    with gzip.open(path, "rb") as fh:
        trace = fh.read()
    return run, trace


class TestEveryWorkload:
    @pytest.mark.parametrize("name", suite_names() + kernel_names())
    def test_fusion_is_invisible(self, name, tmp_path):
        workload = get_workload(name)
        for period in PERIODS:
            fused_run, fused_trace = _run_arm(workload, True, period,
                                              tmp_path)
            ref_run, ref_trace = _run_arm(workload, False, period,
                                          tmp_path)
            assert fused_run.result == ref_run.result, \
                f"{name} period={period}: MachineResult diverged"
            assert render_report(fused_run.analysis, top=10) == \
                render_report(ref_run.analysis, top=10), \
                f"{name} period={period}: analyzer top-10 diverged"
            assert fused_trace == ref_trace, \
                f"{name} period={period}: recorded traces diverged"
