"""System-level property tests: verifier⇔interpreter agreement, GC
consistency, and profiler/heap invariants under random workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DJXPerf, DjxConfig
from repro.heap import FieldSpec, Heap, JClass, Kind, MarkCompactCollector
from repro.jvm import (
    JProgram,
    Machine,
    MachineConfig,
    MethodBuilder,
    verify_program,
)


# ----------------------------------------------------------------------
# Random straight-line arithmetic: verifier accepts ⇒ interpreter runs,
# and the result matches a Python oracle.
# ----------------------------------------------------------------------
arith_ops = st.sampled_from(["add", "sub", "mul", "or", "and", "xor"])


@st.composite
def arith_programs(draw):
    """A random expression tree flattened to stack code + its oracle."""
    values = draw(st.lists(st.integers(-1000, 1000), min_size=1,
                           max_size=8))
    ops = draw(st.lists(arith_ops, min_size=len(values) - 1,
                        max_size=len(values) - 1))
    return values, ops


def oracle(values, ops):
    stack = []
    for v in values:
        stack.append(v)
    # Apply ops exactly as the stack machine will: fold left-to-right
    # over the final stack.
    result = stack[0]
    for v, op in zip(stack[1:], ops):
        if op == "add":
            result = result + v
        elif op == "sub":
            result = result - v
        elif op == "mul":
            result = result * v
        elif op == "or":
            result = result | v
        elif op == "and":
            result = result & v
        else:
            result = result ^ v
    return result


class TestArithmeticAgainstOracle:
    @given(arith_programs())
    @settings(max_examples=60, deadline=None)
    def test_random_expressions(self, case):
        values, ops = case
        b = MethodBuilder("Rand", "m")
        b.iconst(values[0])
        for v, op in zip(values[1:], ops):
            b.iconst(v)
            getattr(b, {"or": "bor", "and": "band",
                        "xor": "bxor"}.get(op, op))()
        b.native("print", 1, False).ret()
        p = JProgram()
        p.add_builder(b)
        p.add_entry("m")
        verify_program(p)
        result = Machine(p).run()
        assert result.output == [str(oracle(values, ops))]


# ----------------------------------------------------------------------
# GC consistency under random allocate/retain/drop sequences
# ----------------------------------------------------------------------
gc_scripts = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(1, 64)),
        st.tuples(st.just("retain")),
        st.tuples(st.just("drop"), st.integers(0, 30)),
        st.tuples(st.just("gc")),
    ),
    min_size=1, max_size=60)


class TestGcConsistency:
    @given(gc_scripts)
    @settings(max_examples=60, deadline=None)
    def test_random_mutation_sequences(self, script):
        heap = Heap(size=512 * 1024)
        roots = []
        collector = MarkCompactCollector(heap, lambda: [r.oid for r in roots])
        last = None
        payload = {}
        for step in script:
            if step[0] == "alloc":
                last = heap.allocate_array(Kind.INT, step[1])
                payload[last.oid] = step[1] * 7
                heap.get(last).set_element(0, step[1] * 7)
            elif step[0] == "retain" and last is not None \
                    and last.oid in heap.objects:
                roots.append(last)
            elif step[0] == "drop" and roots:
                removed = roots.pop(step[1] % len(roots))
            elif step[0] == "gc":
                collector.collect()
        collector.collect()
        # Every root survives with its payload intact; object count
        # equals the unique retained set.
        for ref in roots:
            obj = heap.get(ref)
            assert obj.get_element(0) == payload[ref.oid]
        assert len(heap) == len({r.oid for r in roots})
        # Compaction invariant: objects tile from the heap base.
        expected_addr = heap.base
        for obj in heap.live_objects_in_address_order():
            assert obj.addr == expected_addr
            expected_addr += obj.size

    @given(gc_scripts)
    @settings(max_examples=30, deadline=None)
    def test_memmove_stream_is_replayable(self, script):
        """Applying the memmove events to a shadow map reproduces the
        final heap layout — the property DJXPerf's 4.5 handling needs."""
        heap = Heap(size=512 * 1024)
        roots = []
        collector = MarkCompactCollector(heap, lambda: [r.oid for r in roots])
        shadow = {}   # oid -> addr, maintained purely from events

        def on_alloc(obj, tid):
            shadow[obj.oid] = obj.addr

        def on_move(event):
            # The real tool keys by address; oid is used here only to
            # check the final state.
            shadow[event.oid] = event.dst

        def on_finalize(event):
            shadow.pop(event.oid, None)

        heap.alloc_hooks.append(on_alloc)
        collector.on_memmove.append(on_move)
        collector.on_finalize.append(on_finalize)

        last = None
        for step in script:
            if step[0] == "alloc":
                last = heap.allocate_array(Kind.INT, step[1])
            elif step[0] == "retain" and last is not None:
                roots.append(last)
            elif step[0] == "drop" and roots:
                roots.pop(step[1] % len(roots))
            elif step[0] == "gc":
                collector.collect()
        collector.collect()
        assert shadow == {obj.oid: obj.addr
                          for obj in heap.objects.values()}


# ----------------------------------------------------------------------
# Profiler invariant: the splay tree always mirrors the live tracked set
# ----------------------------------------------------------------------
class TestProfilerHeapInvariant:
    @given(st.integers(2, 40), st.integers(64, 1024))
    @settings(max_examples=20, deadline=None)
    def test_splay_matches_heap_after_run(self, iterations, length):
        from repro.workloads.dsl import for_range

        p = JProgram()
        b = MethodBuilder("P", "main")
        for_range(b, 0, iterations,
                  lambda b: b.iconst(length).newarray(Kind.INT).store(1))
        b.ret()
        p.add_builder(b)
        p.add_entry("main")

        profiler = DJXPerf(DjxConfig(sample_period=64, size_threshold=0))
        machine = Machine(profiler.instrument(p),
                          MachineConfig(heap_size=128 * 1024))
        profiler.attach(machine)
        machine.run()

        # Every interval in the splay tree corresponds to a live object
        # at exactly that address range.
        for start, end, payload in profiler.agent.splay:
            obj = machine.heap.object_at(start)
            assert obj is not None
            assert (obj.addr, obj.end) == (start, end)
        profiler.agent.splay.check_invariants()
