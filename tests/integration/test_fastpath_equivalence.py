"""Differential equivalence: fast path vs legacy engine, every workload.

The compiled-dispatch interpreter and the pooled/fused memory fast path
must be *observationally invisible*: for every suite workload the two
engines must produce the same MachineResult, the same DJXPerf ranking,
and — the strongest check — byte-identical recorded event traces.  A
single diverging cycle count, event ordering, or sampled callstack
shows up as a trace diff here.
"""

import dataclasses
import gzip

import pytest

from repro.core import DjxConfig
from repro.core.report import render_report
from repro.workloads import get_workload, run_profiled
from repro.workloads.suite import suite_names


def _run_both(workload, tmp_path, config=None, trace_accesses=False):
    """Run ``workload`` under both engines; returns {fastpath: outcome}."""
    outcomes = {}
    for fastpath in (True, False):
        mc = dataclasses.replace(workload.machine_config(),
                                 fastpath=fastpath)
        path = str(tmp_path / f"{workload.name}-{fastpath}.jsonl.gz")
        run = run_profiled(workload, config=config, machine_config=mc,
                           trace_path=path, trace_accesses=trace_accesses)
        with gzip.open(path, "rb") as fh:
            trace = fh.read()
        outcomes[fastpath] = (run.result, render_report(run.analysis,
                                                        top=10), trace)
    return outcomes


class TestEveryWorkload:
    @pytest.mark.parametrize("name", suite_names())
    def test_traces_and_rankings_identical(self, name, tmp_path):
        outcomes = _run_both(get_workload(name), tmp_path)
        fast_result, fast_report, fast_trace = outcomes[True]
        legacy_result, legacy_report, legacy_trace = outcomes[False]
        assert fast_result == legacy_result
        assert fast_report == legacy_report
        assert fast_trace == legacy_trace


class TestAccessStream:
    """With raw access recording on, the fast path is fully disabled for
    memory (every result object is retained by the trace) — but the
    compiled dispatch still runs, so this checks the interpreter layer
    in isolation, at the finest observable granularity."""

    @pytest.mark.parametrize("name", ["objectlayout", "montecarlo"])
    def test_raw_access_traces_identical(self, name, tmp_path):
        outcomes = _run_both(get_workload(name), tmp_path,
                             config=DjxConfig(sample_period=64),
                             trace_accesses=True)
        assert outcomes[True][2] == outcomes[False][2]
