"""Unit tests for the PMU event catalogue."""

import pytest

from repro.memsys.hierarchy import (
    LEVEL_DRAM,
    LEVEL_L1,
    AccessResult,
)
from repro.pmu.events import (
    ALL_LOADS,
    ALL_STORES,
    DTLB_LOAD_MISSES,
    L1_MISS,
    L3_MISS,
    REMOTE_DRAM_LOADS,
    event_by_name,
    load_latency_event,
)


def access(is_write=False, level=LEVEL_L1, l1=0, l2=0, l3=0, tlb=0,
           latency=4, remote=False):
    return AccessResult(address=0x1000, size=8, is_write=is_write, cpu=0,
                        level=level, latency=latency, l1_misses=l1,
                        l2_misses=l2, l3_misses=l3, tlb_misses=tlb,
                        home_node=1 if remote else 0, remote=remote)


class TestEventCounts:
    def test_l1_miss_counts_load_misses(self):
        assert L1_MISS.counts(access(l1=1)) == 1
        assert L1_MISS.counts(access(l1=0)) == 0

    def test_l1_miss_ignores_stores(self):
        assert L1_MISS.counts(access(is_write=True, l1=1)) == 0

    def test_l3_miss(self):
        assert L3_MISS.counts(access(l3=2)) == 2

    def test_dtlb(self):
        assert DTLB_LOAD_MISSES.counts(access(tlb=1)) == 1
        assert DTLB_LOAD_MISSES.counts(access(is_write=True, tlb=1)) == 0

    def test_all_loads_and_stores(self):
        assert ALL_LOADS.counts(access()) == 1
        assert ALL_LOADS.counts(access(is_write=True)) == 0
        assert ALL_STORES.counts(access(is_write=True)) == 1

    def test_remote_dram(self):
        hit = access(level=LEVEL_DRAM, remote=True)
        assert REMOTE_DRAM_LOADS.counts(hit) == 1
        # Remote page but cache hit: not a remote DRAM transaction.
        cached = access(level=LEVEL_L1, remote=True)
        assert REMOTE_DRAM_LOADS.counts(cached) == 0

    def test_load_latency_threshold(self):
        event = load_latency_event(100)
        assert event.counts(access(latency=150)) == 1
        assert event.counts(access(latency=50)) == 0
        assert "100" in event.name


class TestRegistry:
    def test_lookup_by_name(self):
        assert event_by_name("MEM_LOAD_UOPS_RETIRED:L1_MISS") is L1_MISS

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown PMU event"):
            event_by_name("BOGUS")
