"""Tests for the JVMTI-style agent interface."""

import pytest

from repro.heap.layout import Kind
from repro.jvm import (
    JitConfig,
    JProgram,
    Machine,
    MachineConfig,
    MethodBuilder,
)
from repro.jvmti import CallFrame, JvmtiEnv

from tests.jvm.helpers import counting_loop


def nested_program():
    p = JProgram()
    inner = MethodBuilder("App", "inner", first_line=30)
    inner.iconst(4).newarray(Kind.INT).store(0)
    inner.load(0).iconst(2).aload().iret()
    p.add_builder(inner)
    outer = MethodBuilder("App", "outer", first_line=20)
    outer.invoke("inner", 0).iret()
    p.add_builder(outer)
    main = MethodBuilder("App", "main", first_line=10)
    main.invoke("outer", 0).pop().ret()
    p.add_builder(main)
    p.add_entry("main")
    return p


class TestCallbacks:
    def test_thread_callbacks(self):
        machine = Machine(nested_program())
        env = JvmtiEnv(machine)
        events = []
        env.on_thread_start(lambda t: events.append(("start", t.tid)))
        env.on_thread_end(lambda t: events.append(("end", t.tid)))
        machine.run()
        assert events == [("start", 0), ("end", 0)]

    def test_gc_callbacks(self):
        p = JProgram()
        b = MethodBuilder("C", "main")
        counting_loop(b, 100, 0,
                      lambda b: b.iconst(128).newarray(Kind.INT).store(1))
        b.ret()
        p.add_builder(b)
        p.add_entry("main")
        machine = Machine(p, MachineConfig(heap_size=32 * 1024))
        env = JvmtiEnv(machine)
        events = []
        env.on_gc_start(lambda gc_id: events.append(("start", gc_id)))
        env.on_gc_end(lambda gc_id: events.append(("end", gc_id)))
        env.on_gc_notification(lambda n: events.append(("note", n.gc_id)))
        machine.run()
        assert events
        assert events[0] == ("start", 1)
        assert ("note", 1) in events


class TestAsyncGetCallTrace:
    def test_unwinds_nested_frames(self):
        # PMU samples on the bus carry the path unwound at overflow
        # time (AsyncGetCallTrace from the overflow handler).
        from repro.obs.collector import Collector
        from repro.pmu.events import ALL_LOADS

        machine = Machine(nested_program())
        env = JvmtiEnv(machine)

        class Capture(Collector):
            label = "capture"

            def __init__(self):
                super().__init__()
                self.paths = []

            def on_sample(self, event):
                self.paths.append(event.path)

        capture = Capture()
        machine.bus.subscribe(capture)
        machine.bus.open_sampler(ALL_LOADS, period=1, owner="capture")
        machine.run()
        # Every sampled path is non-empty and frames resolve to methods.
        assert capture.paths
        for path in capture.paths:
            assert path
            for method_id, _bci in path:
                info = env.get_method_info(method_id)
                assert info.class_name == "App"

    def test_trace_is_root_first(self):
        # Capture a trace while inside `inner` via a native hook.
        p = nested_program()
        machine = Machine(p)
        env = JvmtiEnv(machine)
        captured = []
        # Rebuild inner to call a capture native.
        inner = MethodBuilder("App", "inner", first_line=30)
        inner.native("capture", 0, False).iconst(1).iret()
        p.methods["inner"] = inner.build()
        machine2 = Machine(p)
        env2 = JvmtiEnv(machine2)
        machine2.register_native(
            "capture",
            lambda call: captured.append(
                env2.async_get_call_trace(call.thread)))
        machine2.run()
        assert captured
        names = [env2.get_method_info(f.method_id).method_name
                 for f in captured[0]]
        assert names == ["main", "outer", "inner"]


class TestMethodResolution:
    def test_line_number_table(self):
        machine = Machine(nested_program())
        env = JvmtiEnv(machine)
        runtime = machine.method_table.runtime("main")
        table = env.get_line_number_table(runtime.method_id)
        assert all(line == 10 for line in table.values())

    def test_method_info_reflects_jit(self):
        p = nested_program()
        machine = Machine(p, MachineConfig(
            jit=JitConfig(compile_threshold=1)))
        env = JvmtiEnv(machine)
        machine.run()
        runtime = machine.method_table.runtime("main")
        info = env.get_method_info(runtime.method_id)
        assert info.compiled
        assert info.version == 1
        assert info.qualified_name == "App.main"

    def test_line_of_frame(self):
        machine = Machine(nested_program())
        env = JvmtiEnv(machine)
        runtime = machine.method_table.runtime("outer")
        frame = CallFrame(runtime.method_id, 0)
        assert env.line_of(frame) == 20


class TestNumaSurface:
    def test_move_pages_query(self):
        machine = Machine(nested_program())
        env = JvmtiEnv(machine)
        machine.hierarchy.page_table.touch(0x5000, cpu=0)
        assert env.move_pages_query([0x5000]) == [0]
        assert env.move_pages_query([0x999000]) == [None]

    def test_node_of_cpu(self):
        machine = Machine(nested_program(),
                          MachineConfig(num_nodes=2, cpus_per_node=4))
        env = JvmtiEnv(machine)
        assert env.node_of_cpu(0) == 0
        assert env.node_of_cpu(5) == 1
