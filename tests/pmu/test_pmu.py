"""Unit tests for sampling counters and the per-thread PMU."""

import pytest

from repro.memsys.hierarchy import LEVEL_DRAM, LEVEL_L1, AccessResult
from repro.pmu import ALL_LOADS, L1_MISS, PerfEventConfig, ThreadPmu
from repro.pmu.pmu import PerfCounter


def load(l1=1, address=0x1000):
    return AccessResult(address=address, size=8, is_write=False, cpu=3,
                        level=LEVEL_DRAM if l1 else LEVEL_L1, latency=200,
                        l1_misses=l1, l2_misses=0, l3_misses=0, tlb_misses=0,
                        home_node=0, remote=False)


class TestPerfCounter:
    def test_overflow_every_period(self):
        samples = []
        counter = PerfCounter(PerfEventConfig(L1_MISS, sample_period=3),
                              samples.append)
        for _ in range(9):
            counter.observe(0, load())
        assert len(samples) == 3
        assert counter.total == 9

    def test_no_sample_before_period(self):
        samples = []
        counter = PerfCounter(PerfEventConfig(L1_MISS, sample_period=10),
                              samples.append)
        for _ in range(9):
            counter.observe(0, load())
        assert samples == []
        assert counter.value == 9

    def test_sample_carries_pebs_payload(self):
        samples = []
        counter = PerfCounter(PerfEventConfig(L1_MISS, sample_period=1),
                              samples.append)
        counter.observe(7, load(address=0xBEEF), ucontext="ctx")
        s = samples[0]
        assert s.address == 0xBEEF
        assert s.cpu == 3                 # PERF_SAMPLE_CPU
        assert s.tid == 7
        assert s.ucontext == "ctx"
        assert s.event == L1_MISS.name

    def test_multi_count_access_can_deliver_multiple_samples(self):
        # An access spanning lines can count 2 events; with period 1 it
        # must deliver 2 samples.
        samples = []
        counter = PerfCounter(PerfEventConfig(L1_MISS, sample_period=1),
                              samples.append)
        two_miss = AccessResult(address=0x0, size=128, is_write=False,
                                cpu=0, level=LEVEL_DRAM, latency=400,
                                l1_misses=2, l2_misses=2, l3_misses=2,
                                tlb_misses=0, home_node=0, remote=False,
                                lines=2)
        delivered = counter.observe(0, two_miss)
        assert delivered == 2

    def test_disabled_counter_ignores_events(self):
        samples = []
        counter = PerfCounter(PerfEventConfig(L1_MISS, sample_period=1),
                              samples.append)
        counter.enabled = False
        counter.observe(0, load())
        assert counter.total == 0
        assert samples == []

    def test_zero_count_event_ignored(self):
        samples = []
        counter = PerfCounter(PerfEventConfig(L1_MISS, sample_period=1),
                              samples.append)
        counter.observe(0, load(l1=0))
        assert counter.total == 0

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            PerfEventConfig(L1_MISS, sample_period=0)


class TestThreadPmu:
    def test_multiple_counters_observe_independently(self):
        pmu = ThreadPmu(tid=1)
        miss_samples, load_samples = [], []
        pmu.open(PerfEventConfig(L1_MISS, 2), miss_samples.append)
        pmu.open(PerfEventConfig(ALL_LOADS, 4), load_samples.append)
        for _ in range(8):
            pmu.observe(load())
        assert len(miss_samples) == 4
        assert len(load_samples) == 2
        assert pmu.total_for(L1_MISS.name) == 8
        assert pmu.samples_for(ALL_LOADS.name) == 2

    def test_disable_enable_all(self):
        pmu = ThreadPmu(tid=1)
        samples = []
        pmu.open(PerfEventConfig(L1_MISS, 1), samples.append)
        pmu.disable_all()
        pmu.observe(load())
        assert samples == []
        pmu.enable_all()
        pmu.observe(load())
        assert len(samples) == 1

    def test_close_clears_counters(self):
        pmu = ThreadPmu(tid=1)
        pmu.open(PerfEventConfig(L1_MISS, 1), lambda s: None)
        pmu.close()
        assert pmu.counters == []
