"""Unit-level tests of the JVMTI agent's GC-handling edge cases.

These call the agent's typed event handlers directly (the same entry
points :meth:`~repro.obs.collector.Collector.handle_batch` dispatches
to), simulating GC activity by hand.
"""

import pytest

from repro.core import DJXPerf, DjxConfig
from repro.core.jvmtiagent import AgentCostModel
from repro.heap.layout import Kind
from repro.jvm import JProgram, Machine, MachineConfig, MethodBuilder
from repro.obs.events import (
    GcFinalizeEvent,
    GcMoveEvent,
    GcNotifyEvent,
    SampleEvent,
)

from tests.jvm.helpers import counting_loop


def attached_agent(iterations=5, heap=1024 * 1024, threshold=0):
    p = JProgram()
    b = MethodBuilder("C", "main")
    counting_loop(b, iterations, 0,
                  lambda b: b.iconst(256).newarray(Kind.INT).store(1))
    b.ret()
    p.add_builder(b)
    p.add_entry("main")
    profiler = DJXPerf(DjxConfig(sample_period=64, size_threshold=threshold))
    machine = Machine(profiler.instrument(p),
                      MachineConfig(heap_size=heap))
    profiler.attach(machine)
    return profiler, machine


def gc_notify(gc_id=1, reclaimed_objects=0, reclaimed_bytes=0,
              moved_objects=0, moved_bytes=0):
    return GcNotifyEvent(gc_id=gc_id, reclaimed_objects=reclaimed_objects,
                         reclaimed_bytes=reclaimed_bytes,
                         moved_objects=moved_objects,
                         moved_bytes=moved_bytes, live_bytes=0,
                         pause_cycles=0)


class TestRelocationMap:
    def test_memmove_buffered_until_notification(self):
        profiler, machine = attached_agent()
        machine.run()
        agent = profiler.agent
        # Simulate GC activity by hand: one tracked object "moves".
        start, end, payload = next(iter(agent.splay))
        size = end - start
        agent.on_gc_move(GcMoveEvent(oid=0, src=start, dst=0x9000,
                                     size=size))
        # Not yet applied: lookups still resolve the old address.
        assert agent.splay.lookup(start) is payload
        assert agent._relocation_map == {start: (0x9000, size)}
        agent.on_gc_notification(gc_notify(moved_objects=1,
                                           moved_bytes=size))
        assert agent.splay.lookup(start) is None
        assert agent.splay.lookup(0x9000) is payload
        assert agent._relocation_map == {}

    def test_move_of_untracked_object_inserts_unknown(self):
        profiler, machine = attached_agent()
        machine.run()
        agent = profiler.agent
        agent.on_gc_move(GcMoveEvent(oid=0, src=0x777000, dst=0x888000,
                                     size=64))
        agent.on_gc_notification(gc_notify(moved_objects=1, moved_bytes=64))
        tracked = agent.splay.lookup(0x888000)
        assert tracked is not None
        assert tracked.known is False
        assert agent.stats.relocations_unknown == 1

    def test_finalize_cancels_pending_relocation(self):
        profiler, machine = attached_agent()
        machine.run()
        agent = profiler.agent
        start, end, _payload = next(iter(agent.splay))
        size = end - start
        agent.on_gc_move(GcMoveEvent(oid=0, src=start, dst=0xA000,
                                     size=size))
        agent.on_gc_finalize(GcFinalizeEvent(oid=0, addr=start, size=size,
                                             type_name="int[]"))
        agent.on_gc_notification(gc_notify(reclaimed_objects=1,
                                           reclaimed_bytes=size))
        # Reclaimed object must not be resurrected at its destination.
        assert agent.splay.lookup(0xA000) is None
        assert agent.splay.lookup(start) is None

    def test_unknown_object_samples_counted_unknown(self):
        profiler, machine = attached_agent()
        machine.run()
        agent = profiler.agent
        agent.on_gc_move(GcMoveEvent(oid=0, src=0x777000, dst=0x888000,
                                     size=64))
        agent.on_gc_notification(gc_notify(moved_objects=1, moved_bytes=64))
        # A sample landing in the unknown interval is recorded as
        # unknown, not attributed to a bogus path.
        thread = machine.threads[0]
        sampler_id = next(iter(agent._sampler_ids))
        before = agent.stats.samples_unknown
        agent.on_sample(SampleEvent(
            sampler_id=sampler_id, event="MEM_LOAD_UOPS_RETIRED:L1_MISS",
            tid=thread.tid, cpu=0, address=0x888010, size=8,
            is_write=False, latency=200, level="DRAM", home_node=0,
            remote=False, path=(), thread=thread))
        assert agent.stats.samples_unknown == before + 1

    def test_foreign_sampler_ignored(self):
        profiler, machine = attached_agent()
        machine.run()
        agent = profiler.agent
        thread = machine.threads[0]
        foreign = max(agent._sampler_ids) + 1000
        before = agent.stats.samples_handled
        agent.on_sample(SampleEvent(
            sampler_id=foreign, event="MEM_LOAD_UOPS_RETIRED:L1_MISS",
            tid=thread.tid, cpu=0, address=0x888010, size=8,
            is_write=False, latency=200, level="DRAM", home_node=0,
            remote=False, path=(), thread=thread))
        assert agent.stats.samples_handled == before


class TestDisabledAgent:
    def test_events_ignored_after_stop(self):
        profiler, machine = attached_agent()
        machine.run()
        agent = profiler.agent
        agent.stop()
        before = len(agent.splay)
        agent.on_gc_move(GcMoveEvent(oid=0, src=0x1, dst=0x2, size=8))
        assert agent._relocation_map == {}
        agent.on_gc_finalize(GcFinalizeEvent(oid=0, addr=0x1, size=8,
                                             type_name="x"))
        assert len(agent.splay) == before


class TestCostCharging:
    def test_alloc_dispatch_charged_even_when_filtered(self):
        costs = AgentCostModel()
        profiler, machine = attached_agent(threshold=1 << 20)  # filter all
        machine.run()
        agent = profiler.agent
        assert agent.stats.allocations_seen == 5
        assert agent.stats.allocations_filtered == 5
        # Dispatch cost must have been charged for each filtered alloc;
        # full hook cost must not (no splay entries).
        assert len(agent.splay) == 0
        # Per-collector accounting: at least the five dispatch charges,
        # but none of the alloc_hook_base charges (all filtered).
        assert agent.charged_cycles >= 5 * costs.alloc_hook_dispatch
        alloc_charges = agent.charged_cycles - 5 * costs.alloc_hook_dispatch
        # Remaining charges are all sample handling, in sample_base units.
        assert agent.stats.samples_handled > 0 or alloc_charges == 0