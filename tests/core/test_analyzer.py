"""Unit tests for the offline analyzer on synthetic profiles."""

import pytest

from repro.core.analyzer import analyze_profiles
from repro.core.profile import ResolvedFrame, ThreadProfile

EVENT = "MEM_LOAD_UOPS_RETIRED:L1_MISS"

#: A resolver with a fixed method table: method_id -> (class, method).
METHODS = {
    1: ("A", "main", "A.java"),
    2: ("A", "helper", "A.java"),
    3: ("B", "run", "B.java"),
    # 4 is a JITted instance of method 2 (same source identity).
    4: ("A", "helper", "A.java"),
}


def resolver(frame):
    method_id, bci = frame
    cls, method, source = METHODS[method_id]
    return ResolvedFrame(cls, method, source, line=bci + 100)


def make_profile(tid, site_frames, allocs=1, samples=0, remote=0,
                 access_frames=()):
    profile = ThreadProfile(tid)
    stats = profile.site(tuple(site_frames))
    for _ in range(allocs):
        stats.record_allocation("int[]", 1024)
    for i in range(samples):
        profile.record_total(EVENT)
        stats.record_sample(EVENT, tuple(access_frames), remote=i < remote)
    return profile


class TestMerging:
    def test_single_profile_passthrough(self):
        p = make_profile(0, [(1, 5)], allocs=3, samples=4)
        result = analyze_profiles([p], resolver, EVENT)
        assert len(result.sites) == 1
        site = result.sites[0]
        assert site.alloc_count == 3
        assert site.metric(EVENT) == 4
        assert site.leaf.location == "A.main:105"

    def test_same_path_across_threads_coalesces(self):
        p0 = make_profile(0, [(1, 5)], allocs=2, samples=3)
        p1 = make_profile(1, [(1, 5)], allocs=1, samples=2)
        result = analyze_profiles([p0, p1], resolver, EVENT)
        assert len(result.sites) == 1
        assert result.sites[0].alloc_count == 3
        assert result.sites[0].metric(EVENT) == 5
        assert result.thread_count == 2

    def test_jit_instances_coalesce_by_source_identity(self):
        # method_ids 2 and 4 resolve to the same source frame.
        p0 = make_profile(0, [(1, 5), (2, 7)], samples=2)
        p1 = make_profile(1, [(1, 5), (4, 7)], samples=3)
        result = analyze_profiles([p0, p1], resolver, EVENT)
        assert len(result.sites) == 1
        assert result.sites[0].metric(EVENT) == 5

    def test_different_paths_stay_separate(self):
        p0 = make_profile(0, [(1, 5)], samples=1)
        p1 = make_profile(1, [(3, 9)], samples=1)
        result = analyze_profiles([p0, p1], resolver, EVENT)
        assert len(result.sites) == 2

    def test_access_contexts_merge(self):
        p0 = make_profile(0, [(1, 5)], samples=2, access_frames=[(2, 3)])
        p1 = make_profile(1, [(1, 5)], samples=3, access_frames=[(2, 3)])
        result = analyze_profiles([p0, p1], resolver, EVENT)
        contexts = result.sites[0].access_contexts
        assert len(contexts) == 1
        (path, metrics), = contexts.items()
        assert metrics[EVENT] == 5
        assert path[0].location == "A.helper:103"

    def test_merge_order_independent(self):
        p0 = make_profile(0, [(1, 5)], allocs=2, samples=3)
        p1 = make_profile(1, [(1, 5)], allocs=4, samples=1)
        r_ab = analyze_profiles([p0, p1], resolver, EVENT)
        r_ba = analyze_profiles([p1, p0], resolver, EVENT)
        assert r_ab.sites[0].alloc_count == r_ba.sites[0].alloc_count
        assert r_ab.total() == r_ba.total()


class TestRankingAndShares:
    def test_ranked_by_primary_event(self):
        p = ThreadProfile(0)
        cold = p.site(((1, 1),))
        hot = p.site(((1, 2),))
        for _ in range(10):
            p.record_total(EVENT)
            hot.record_sample(EVENT, (), remote=False)
        p.record_total(EVENT)
        cold.record_sample(EVENT, (), remote=False)
        result = analyze_profiles([p], resolver, EVENT)
        top = result.top_sites(2)
        assert top[0].metric(EVENT) == 10
        assert result.share(top[0]) == pytest.approx(10 / 11)

    def test_share_zero_when_no_samples(self):
        p = make_profile(0, [(1, 5)], allocs=1, samples=0)
        result = analyze_profiles([p], resolver, EVENT)
        assert result.share(result.sites[0]) == 0.0

    def test_coverage_accounts_unknown(self):
        p = make_profile(0, [(1, 5)], samples=3)
        p.record_total(EVENT)
        p.record_unknown(EVENT)
        result = analyze_profiles([p], resolver, EVENT)
        assert result.coverage() == pytest.approx(3 / 4)

    def test_coverage_zero_without_samples(self):
        result = analyze_profiles([ThreadProfile(0)], resolver, EVENT)
        assert result.coverage() == 0.0

    def test_top_remote_sites(self):
        p = make_profile(0, [(1, 5)], samples=4, remote=3)
        q = make_profile(1, [(3, 9)], samples=4, remote=0)
        result = analyze_profiles([p, q], resolver, EVENT)
        remote = result.top_remote_sites(5)
        assert len(remote) == 1
        assert remote[0].remote_samples == 3
        assert remote[0].remote_ratio == pytest.approx(0.75)

    def test_site_at_lookup(self):
        p = make_profile(0, [(1, 5)], samples=1)
        result = analyze_profiles([p], resolver, EVENT)
        assert result.site_at("A", "main", 105) is result.sites[0]
        assert result.site_at("A", "main") is result.sites[0]
        assert result.site_at("A", "main", 999) is None
        assert result.site_at("Z", "zzz") is None


class TestSizeTracking:
    def test_min_max_sizes_merge(self):
        p0 = ThreadProfile(0)
        p0.site(((1, 5),)).record_allocation("int[]", 100)
        p1 = ThreadProfile(1)
        p1.site(((1, 5),)).record_allocation("int[]", 6400)
        result = analyze_profiles([p0, p1], resolver, EVENT)
        site = result.sites[0]
        assert site.min_size == 100
        assert site.max_size == 6400
        assert site.size_spread == pytest.approx(64.0)

    def test_size_spread_defaults_to_one(self):
        p = ThreadProfile(0)
        p.site(((1, 5),))   # no allocations recorded
        result = analyze_profiles([p], resolver, EVENT)
        assert result.sites[0].size_spread == 1.0
