"""Integration tests for DJXPerf: attribution, GC handling, NUMA, modes."""

import json
import os

import pytest

from repro.core import DJXPerf, DjxConfig, render_numa_report, render_report
from repro.heap.layout import Kind
from repro.jvm import JProgram, Machine, MachineConfig, MethodBuilder
from repro.pmu.events import ALL_LOADS

from tests.jvm.helpers import counting_loop


BIG = 8192          # 64KB int array — larger than the 32KB L1


def hot_array_program(iterations=10, n=BIG, line=50):
    """Allocates one big array per iteration and streams through it."""
    p = JProgram("hot")
    b = MethodBuilder("Hot", "run", first_line=line)
    def body(b):
        b.line(line + 5)
        b.iconst(n).newarray(Kind.INT).store(1)
        b.line(line + 8)
        counting_loop(b, n, 2,
                      lambda b: b.load(1).load(2).aload().pop())
        b.line(line)
    counting_loop(b, iterations, 0, body)
    b.ret()
    p.add_builder(b)
    p.add_entry("run")
    return p


def profiled_run(program, config=None, machine_config=None):
    profiler = DJXPerf(config or DjxConfig(sample_period=16))
    instrumented = profiler.instrument(program)
    machine = Machine(instrumented,
                      machine_config or MachineConfig(heap_size=4 * 1024 * 1024))
    profiler.attach(machine)
    result = machine.run()
    return profiler, machine, result


class TestAttribution:
    def test_hot_object_dominates_profile(self):
        profiler, _, _ = profiled_run(hot_array_program())
        analysis = profiler.analyze()
        top = analysis.top_sites(1)[0]
        assert analysis.share(top) > 0.9
        assert top.dominant_type() == "int[]"

    def test_allocation_site_resolved_to_source_line(self):
        profiler, _, _ = profiled_run(hot_array_program(line=50))
        analysis = profiler.analyze()
        site = analysis.top_sites(1)[0]
        assert site.leaf.class_name == "Hot"
        assert site.leaf.method_name == "run"
        assert site.leaf.line == 55   # line + 5 (the newarray line)

    def test_alloc_count_matches_iterations(self):
        profiler, _, _ = profiled_run(hot_array_program(iterations=7))
        analysis = profiler.analyze()
        assert analysis.top_sites(1)[0].alloc_count == 7

    def test_access_contexts_recorded(self):
        profiler, _, _ = profiled_run(hot_array_program())
        site = profiler.analyze().top_sites(1)[0]
        assert site.access_contexts
        access_lines = {path[-1].line
                        for path in site.access_contexts}
        assert 58 in access_lines    # line + 8 region (the read loop)

    def test_objects_allocated_in_callee_attributed_by_full_path(self):
        # Same callee called from two different call sites: the paths
        # must stay distinguishable (full calling context, paper 4.4).
        p = JProgram()
        helper = MethodBuilder("Lib", "make", first_line=5)
        helper.iconst(BIG).newarray(Kind.INT).iret()
        p.add_builder(helper)
        main = MethodBuilder("App", "main", first_line=20)
        def use(b):
            counting_loop(b, BIG, 2,
                          lambda b: b.load(1).load(2).aload().pop())
        main.line(21).invoke("make", 0).store(1)
        use(main)
        main.line(31).invoke("make", 0).store(1)
        use(main)
        main.ret()
        p.add_builder(main)
        p.add_entry("main")
        profiler, _, _ = profiled_run(p)
        analysis = profiler.analyze()
        sites = [s for s in analysis.sites if s.alloc_count > 0]
        assert len(sites) == 2
        caller_lines = sorted(s.path[-2].line for s in sites)
        assert caller_lines == [21, 31]
        for s in sites:
            assert s.path[-1].location == "Lib.make:5"

    def test_coverage_full_in_launch_mode(self):
        profiler, _, _ = profiled_run(hot_array_program())
        assert profiler.analyze().coverage() == pytest.approx(1.0)


class TestSizeThreshold:
    def test_small_objects_filtered_by_default(self):
        # 16-element arrays (≈144B) are below the 1KB default S.
        p = hot_array_program(n=16, iterations=5)
        profiler, _, _ = profiled_run(
            p, DjxConfig(sample_period=4, events=(ALL_LOADS,)))
        assert profiler.agent.stats.allocations_filtered == 5
        analysis = profiler.analyze()
        assert all(s.alloc_count == 0 for s in analysis.sites)

    def test_s_zero_monitors_everything(self):
        p = hot_array_program(n=16, iterations=5)
        profiler, _, _ = profiled_run(
            p, DjxConfig(sample_period=4, size_threshold=0,
                         events=(ALL_LOADS,)))
        assert profiler.agent.stats.allocations_filtered == 0
        analysis = profiler.analyze()
        assert analysis.top_sites(1)[0].alloc_count == 5

    def test_threshold_filters_exact_boundary(self):
        # Array of 120 ints = 16 + 960 = 976B < 1024; 128 ints = 1040 >= S.
        p = JProgram()
        b = MethodBuilder("C", "main")
        b.iconst(120).newarray(Kind.INT).store(0)
        b.iconst(128).newarray(Kind.INT).store(1)
        b.ret()
        p.add_builder(b)
        p.add_entry("main")
        profiler, _, _ = profiled_run(p)
        assert profiler.agent.stats.allocations_seen == 2
        assert profiler.agent.stats.allocations_filtered == 1


class TestGcHandling:
    def test_samples_attributed_after_object_moves(self):
        # Live array keeps getting accessed across GCs that move it.
        p = JProgram()
        b = MethodBuilder("App", "main", first_line=1)
        b.line(2).iconst(BIG).newarray(Kind.INT).store(0)   # the victim
        # churn garbage in front of it so compaction moves it
        def body(b):
            b.line(5).iconst(2048).newarray(Kind.INT).store(1)
            b.line(6)
            counting_loop(b, BIG, 3,
                          lambda b: b.load(0).load(3).aload().pop())
        counting_loop(b, 30, 2, body)
        b.ret()
        p.add_builder(b)
        p.add_entry("main")
        profiler, machine, result = profiled_run(
            p, machine_config=MachineConfig(heap_size=256 * 1024))
        assert result.gc_collections > 0
        assert profiler.agent.stats.relocations_applied > 0
        analysis = profiler.analyze()
        victim = analysis.site_at("App", "main", line=2)
        assert victim is not None
        # The victim keeps collecting samples after being moved.
        assert analysis.share(victim) > 0.5
        # Splay stayed consistent with the heap.
        assert analysis.coverage() > 0.95

    def test_finalized_objects_removed_from_splay(self):
        p = hot_array_program(iterations=40, n=2048)
        profiler, machine, result = profiled_run(
            p, machine_config=MachineConfig(heap_size=128 * 1024))
        assert result.gc_collections > 0
        assert profiler.agent.stats.finalized_removed > 0
        # Only live tracked objects remain in the splay tree.
        assert len(profiler.agent.splay) <= len(machine.heap)

    def test_relocation_map_reset_after_notification(self):
        p = hot_array_program(iterations=40, n=2048)
        profiler, _, _ = profiled_run(
            p, machine_config=MachineConfig(heap_size=128 * 1024))
        assert profiler.agent._relocation_map == {}


class TestNumaDetection:
    def numa_program(self):
        p = JProgram()
        p.statics["shared"] = None
        p.statics["ready"] = 0
        master = MethodBuilder("App", "master", first_line=10)
        master.line(11).iconst(BIG).newarray(Kind.INT).putstatic("shared")
        master.iconst(1).putstatic("ready")
        master.ret()
        p.add_builder(master)
        worker = MethodBuilder("App", "worker", first_line=20)
        worker.native("await_static", 0, False, "ready")
        worker.getstatic("shared").store(0)
        counting_loop(worker, BIG, 1,
                      lambda b: b.line(24).load(0).load(1).aload().pop())
        worker.ret()
        p.add_builder(worker)
        p.add_entry("master", cpu=0)
        p.add_entry("worker", cpu=4)
        return p

    def test_remote_object_flagged(self):
        profiler, _, _ = profiled_run(
            self.numa_program(),
            DjxConfig(sample_period=16),
            MachineConfig(num_nodes=2, cpus_per_node=4,
                          heap_size=4 * 1024 * 1024))
        analysis = profiler.analyze()
        remote_sites = analysis.top_remote_sites(3)
        assert remote_sites
        top = remote_sites[0]
        assert top.leaf.line == 11
        assert top.remote_ratio > 0.5

    def test_numa_tracking_can_be_disabled(self):
        profiler, _, _ = profiled_run(
            self.numa_program(),
            DjxConfig(sample_period=16, track_numa=False),
            MachineConfig(num_nodes=2, cpus_per_node=4,
                          heap_size=4 * 1024 * 1024))
        analysis = profiler.analyze()
        assert analysis.top_remote_sites(3) == []


class TestAttachDetach:
    def test_attach_mid_run_misses_earlier_allocations(self):
        profiler = DJXPerf(DjxConfig(sample_period=16))
        program = profiler.instrument(hot_array_program(iterations=10))
        machine = Machine(program, MachineConfig(heap_size=4 * 1024 * 1024))
        DJXPerf.install_noop_hook(machine)
        machine.run(max_instructions=40000)   # part of the program
        profiler.attach(machine)              # attach mode
        machine.run()
        analysis = profiler.analyze()
        site = analysis.top_sites(1)[0]
        assert 0 < site.alloc_count < 10
        # Samples before attach were never taken; coverage of taken
        # samples can still include unknowns from pre-attach objects.
        assert analysis.total() > 0

    def test_detach_stops_sampling(self):
        profiler = DJXPerf(DjxConfig(sample_period=16))
        program = profiler.instrument(hot_array_program(iterations=10))
        machine = Machine(program, MachineConfig(heap_size=4 * 1024 * 1024))
        profiler.attach(machine)
        machine.run(max_instructions=40000)
        taken = profiler.agent.stats.samples_handled
        assert taken > 0
        profiler.detach()
        machine.run()
        assert profiler.agent.stats.samples_handled == taken

    def test_double_attach_rejected(self):
        profiler = DJXPerf()
        program = profiler.instrument(hot_array_program(iterations=1))
        machine = Machine(program)
        profiler.attach(machine)
        with pytest.raises(RuntimeError):
            profiler.attach(machine)

    def test_double_attach_leaves_native_hooks_unchanged(self):
        # A rejected attach must not have clobbered the machine's native
        # hook table (the failure path runs before any machine mutation).
        profiler = DJXPerf()
        program = profiler.instrument(hot_array_program(iterations=1))
        machine = Machine(program)
        profiler.attach(machine)
        hooks_before = dict(machine.natives)
        with pytest.raises(RuntimeError):
            profiler.attach(machine)
        assert machine.natives == hooks_before
        # ...and the original attachment still works end to end.
        machine.run()
        assert profiler.analyze().total() >= 0

    def test_detach_then_reattach_fresh_profiler(self):
        # Full lifecycle: profile a prefix, detach, attach a *fresh*
        # DJXPerf to the same machine, and profile the rest.
        first = DJXPerf(DjxConfig(sample_period=16))
        program = first.instrument(hot_array_program(iterations=10))
        machine = Machine(program, MachineConfig(heap_size=4 * 1024 * 1024))
        first.attach(machine)
        machine.run(max_instructions=40000)
        first.detach()
        assert not first.attached
        assert not machine.bus.active          # nobody left subscribed

        second = DJXPerf(DjxConfig(sample_period=16))
        second.attach(machine)
        machine.run()
        assert second.attached
        assert second.agent.stats.samples_handled > 0
        analysis = second.analyze()
        assert analysis.total() > 0
        # The first profiler's results survive its detach untouched.
        first_taken = first.agent.stats.samples_handled
        assert first_taken > 0
        assert first.agent.stats.samples_handled == first_taken

    def test_analyze_requires_attach(self):
        with pytest.raises(RuntimeError):
            DJXPerf().analyze()


class TestMultiThread:
    def test_profiles_merge_across_threads(self):
        p = JProgram()
        b = MethodBuilder("App", "worker", first_line=10)
        def body(b):
            b.line(12).iconst(BIG).newarray(Kind.INT).store(1)
            counting_loop(b, BIG, 2,
                          lambda b: b.load(1).load(2).aload().pop())
            b.line(10)
        counting_loop(b, 3, 0, body)
        b.ret()
        p.add_builder(b)
        for _ in range(4):
            p.add_entry("worker")
        profiler, _, _ = profiled_run(
            p, machine_config=MachineConfig(heap_size=8 * 1024 * 1024))
        assert len(profiler.profiles()) == 4
        analysis = profiler.analyze()
        # One merged site: 4 threads x 3 allocations.
        site = analysis.top_sites(1)[0]
        assert site.alloc_count == 12
        assert analysis.thread_count == 4


class TestOutputs:
    def test_report_rendering(self):
        profiler, _, _ = profiled_run(hot_array_program())
        text = render_report(profiler.analyze(), top=3)
        assert "DJXPerf object-centric profile" in text
        assert "int[]" in text
        assert "Hot.run:55" in text
        assert "allocation context" in text

    def test_numa_report_rendering_empty(self):
        profiler, _, _ = profiled_run(hot_array_program())
        text = render_numa_report(profiler.analyze())
        assert "no remote accesses" in text

    def test_profile_dump_files(self, tmp_path):
        profiler, _, _ = profiled_run(hot_array_program())
        paths = profiler.dump_profiles(str(tmp_path))
        assert len(paths) == 1
        with open(paths[0]) as fp:
            data = json.load(fp)
        assert data["tid"] == 0
        assert data["sites"]
        site = data["sites"][0]
        assert site["alloc_count"] == 10
        assert site["path"][-1][0] == "Hot"

    def test_memory_footprint_positive_and_bounded(self):
        profiler, machine, _ = profiled_run(hot_array_program())
        footprint = profiler.memory_footprint()
        assert footprint > 0
        # Profiler memory should be far below the program's heap peak.
        assert footprint < machine.heap.stats.peak_used
