"""Tests for sampling-period calibration (the 20-200 samples/s rule)."""

import pytest

from repro.core import DJXPerf, DjxConfig
from repro.core.tuning import (
    TARGET_MAX_PER_SEC,
    TARGET_MIN_PER_SEC,
    CalibrationResult,
    calibrate_period,
    clamp_period_to_window,
    rate_in_target_window,
)
from repro.jvm import Machine
from repro.pmu.events import ALL_LOADS, L1_MISS
from repro.workloads import get_workload


def workload_program(name="objectlayout"):
    w = get_workload(name)
    return w.build_verified(), w.machine_config()


class TestCalibration:
    def test_produces_positive_period(self):
        program, config = workload_program()
        result = calibrate_period(program, L1_MISS, config)
        assert result.period >= 1
        assert result.pilot_events > 0
        assert result.pilot_seconds > 0

    def test_rate_lands_near_target(self):
        program, config = workload_program()
        result = calibrate_period(program, L1_MISS, config,
                                  target_per_sec=100.0)
        assert 50.0 <= result.predicted_rate <= 200.0

    def test_hotter_event_gets_larger_period(self):
        program, config = workload_program()
        misses = calibrate_period(program, L1_MISS, config)
        program2, config2 = workload_program()
        loads = calibrate_period(program2, ALL_LOADS, config2)
        # Loads fire far more often than misses → larger period.
        assert loads.period > misses.period

    def test_pilot_does_not_mutate_program(self):
        program, config = workload_program()
        before = program.total_instructions()
        calibrate_period(program, L1_MISS, config)
        assert program.total_instructions() == before

    def test_event_that_never_fires_falls_back(self):
        from repro.pmu.events import PmuEvent
        never = PmuEvent("NEVER", lambda r: 0)
        program, config = workload_program()
        result = calibrate_period(program, never, config)
        assert result.period == 1
        assert result.predicted_rate == 0.0

    def test_invalid_target_rejected(self):
        program, config = workload_program()
        with pytest.raises(ValueError):
            calibrate_period(program, L1_MISS, config, target_per_sec=0)

    def test_calibrated_profile_is_usable(self):
        # End to end: calibrate, then profile with the chosen period and
        # confirm the achieved rate lands near the requested target.
        # Simulated programs span milliseconds of virtual time, so the
        # target is scaled up from the paper's 20-200/s accordingly.
        target = 100_000.0     # samples per simulated second
        workload = get_workload("objectlayout")
        program, config = workload_program()
        calibration = calibrate_period(program, L1_MISS, config,
                                       target_per_sec=target)

        profiler = DJXPerf(DjxConfig(sample_period=calibration.period))
        machine = Machine(profiler.instrument(workload.build_verified()),
                          workload.machine_config())
        profiler.attach(machine)
        machine.run()
        analysis = profiler.analyze()
        samples = analysis.total()
        seconds = max(t.cycles for t in machine.threads) / 2.2e9
        rate = samples / seconds
        assert rate_in_target_window(rate, lo=target / 4, hi=target * 4)
        # And the profile still names the culprit.
        assert analysis.top_sites(1)[0].leaf.line == 292


class TestWindowHelper:
    def test_window_bounds(self):
        assert rate_in_target_window(20.0)
        assert rate_in_target_window(200.0)
        assert not rate_in_target_window(19.9)
        assert not rate_in_target_window(200.1)


class TestZeroPilotEvents:
    def test_empty_program_pilot(self):
        # A pilot that executes nothing (zero instructions): no events,
        # no cycles — calibration must not divide by zero.
        program, config = workload_program()
        result = calibrate_period(program, L1_MISS, config,
                                  pilot_instructions=0)
        assert result.period == 1
        assert result.pilot_events == 0
        assert result.predicted_rate == 0.0

    def test_zero_event_fallback_respects_window(self):
        from repro.pmu.events import PmuEvent
        never = PmuEvent("NEVER", lambda r: 0)
        program, config = workload_program()
        result = calibrate_period(
            program, never, config,
            window=(TARGET_MIN_PER_SEC, TARGET_MAX_PER_SEC))
        assert result.period == 1


class TestPeriodClamp:
    def test_in_window_untouched(self):
        # rate/period = 2000/20 = 100/s, inside [20, 200].
        assert clamp_period_to_window(2000.0, 20) == 20

    def test_rate_too_high_raises_period(self):
        # rate/period = 100000/10 = 10000/s >> 200/s.
        period = clamp_period_to_window(100000.0, 10)
        assert TARGET_MIN_PER_SEC <= 100000.0 / period <= TARGET_MAX_PER_SEC

    def test_rate_too_low_lowers_period(self):
        # rate/period = 1000/500 = 2/s << 20/s.
        period = clamp_period_to_window(1000.0, 500)
        assert period < 500
        assert TARGET_MIN_PER_SEC <= 1000.0 / period <= TARGET_MAX_PER_SEC

    def test_bottoms_out_at_one(self):
        # Events fire slower than the window floor: period 1 is the
        # best available even though the rate stays below the window.
        assert clamp_period_to_window(5.0, 64) == 1

    def test_zero_rate_keeps_period(self):
        assert clamp_period_to_window(0.0, 64) == 64
        assert clamp_period_to_window(0.0, 0) == 1

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            clamp_period_to_window(100.0, 10, lo=200.0, hi=20.0)
        with pytest.raises(ValueError):
            clamp_period_to_window(100.0, 10, lo=0.0, hi=20.0)

    def test_calibrate_with_window_lands_inside(self):
        # Ask for an absurdly high target rate; the window clamp must
        # pull the derived period back into the paper's 20-200/s rule.
        # (Simulated seconds are tiny, so scale the window the same way
        # test_calibrated_profile_is_usable scales the target.)
        program, config = workload_program()
        lo, hi = 50_000.0, 500_000.0
        result = calibrate_period(program, L1_MISS, config,
                                  target_per_sec=10_000_000.0,
                                  window=(lo, hi))
        rate = (result.pilot_events / result.pilot_seconds) / result.period
        assert lo <= rate <= hi
