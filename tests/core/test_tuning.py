"""Tests for sampling-period calibration (the 20-200 samples/s rule)."""

import pytest

from repro.core import DJXPerf, DjxConfig
from repro.core.tuning import (
    TARGET_MAX_PER_SEC,
    TARGET_MIN_PER_SEC,
    CalibrationResult,
    calibrate_period,
    rate_in_target_window,
)
from repro.jvm import Machine
from repro.pmu.events import ALL_LOADS, L1_MISS
from repro.workloads import get_workload


def workload_program(name="objectlayout"):
    w = get_workload(name)
    return w.build_verified(), w.machine_config()


class TestCalibration:
    def test_produces_positive_period(self):
        program, config = workload_program()
        result = calibrate_period(program, L1_MISS, config)
        assert result.period >= 1
        assert result.pilot_events > 0
        assert result.pilot_seconds > 0

    def test_rate_lands_near_target(self):
        program, config = workload_program()
        result = calibrate_period(program, L1_MISS, config,
                                  target_per_sec=100.0)
        assert 50.0 <= result.predicted_rate <= 200.0

    def test_hotter_event_gets_larger_period(self):
        program, config = workload_program()
        misses = calibrate_period(program, L1_MISS, config)
        program2, config2 = workload_program()
        loads = calibrate_period(program2, ALL_LOADS, config2)
        # Loads fire far more often than misses → larger period.
        assert loads.period > misses.period

    def test_pilot_does_not_mutate_program(self):
        program, config = workload_program()
        before = program.total_instructions()
        calibrate_period(program, L1_MISS, config)
        assert program.total_instructions() == before

    def test_event_that_never_fires_falls_back(self):
        from repro.pmu.events import PmuEvent
        never = PmuEvent("NEVER", lambda r: 0)
        program, config = workload_program()
        result = calibrate_period(program, never, config)
        assert result.period == 1
        assert result.predicted_rate == 0.0

    def test_invalid_target_rejected(self):
        program, config = workload_program()
        with pytest.raises(ValueError):
            calibrate_period(program, L1_MISS, config, target_per_sec=0)

    def test_calibrated_profile_is_usable(self):
        # End to end: calibrate, then profile with the chosen period and
        # confirm the achieved rate lands near the requested target.
        # Simulated programs span milliseconds of virtual time, so the
        # target is scaled up from the paper's 20-200/s accordingly.
        target = 100_000.0     # samples per simulated second
        workload = get_workload("objectlayout")
        program, config = workload_program()
        calibration = calibrate_period(program, L1_MISS, config,
                                       target_per_sec=target)

        profiler = DJXPerf(DjxConfig(sample_period=calibration.period))
        machine = Machine(profiler.instrument(workload.build_verified()),
                          workload.machine_config())
        profiler.attach(machine)
        machine.run()
        analysis = profiler.analyze()
        samples = analysis.total()
        seconds = max(t.cycles for t in machine.threads) / 2.2e9
        rate = samples / seconds
        assert rate_in_target_window(rate, lo=target / 4, hi=target * 4)
        # And the profile still names the culprit.
        assert analysis.top_sites(1)[0].leaf.line == 292


class TestWindowHelper:
    def test_window_bounds(self):
        assert rate_in_target_window(20.0)
        assert rate_in_target_window(200.0)
        assert not rate_in_target_window(19.9)
        assert not rate_in_target_window(200.1)
