"""Unit + property tests for the interval splay tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.splay import IntervalSplayTree


class TestBasics:
    def test_empty_lookup(self):
        tree = IntervalSplayTree()
        assert tree.lookup(0x100) is None
        assert len(tree) == 0

    def test_insert_and_lookup_hit(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "a")
        assert tree.lookup(100) == "a"
        assert tree.lookup(150) == "a"
        assert tree.lookup(199) == "a"

    def test_half_open_boundaries(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "a")
        assert tree.lookup(99) is None
        assert tree.lookup(200) is None

    def test_multiple_disjoint_intervals(self):
        tree = IntervalSplayTree()
        for i in range(10):
            tree.insert(i * 100, i * 100 + 50, i)
        for i in range(10):
            assert tree.lookup(i * 100 + 25) == i
            assert tree.lookup(i * 100 + 75) is None
        assert len(tree) == 10

    def test_empty_interval_rejected(self):
        tree = IntervalSplayTree()
        with pytest.raises(ValueError):
            tree.insert(100, 100, "x")
        with pytest.raises(ValueError):
            tree.insert(100, 50, "x")

    def test_interval_at(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "a")
        assert tree.interval_at(150) == (100, 200)
        assert tree.interval_at(250) is None


class TestRemoval:
    def test_remove_start(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "a")
        assert tree.remove_start(100) == "a"
        assert tree.lookup(150) is None
        assert len(tree) == 0

    def test_remove_start_misses_nonstart(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "a")
        assert tree.remove_start(150) is None
        assert len(tree) == 1

    def test_remove_containing(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "a")
        tree.insert(300, 400, "b")
        assert tree.remove_containing(350) == "b"
        assert tree.lookup(350) is None
        assert tree.lookup(150) == "a"

    def test_remove_containing_miss(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "a")
        assert tree.remove_containing(500) is None

    def test_clear(self):
        tree = IntervalSplayTree()
        tree.insert(0, 10, "x")
        tree.clear()
        assert len(tree) == 0
        assert tree.lookup(5) is None


class TestOverlapEviction:
    def test_exact_overlap_replaces(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "old")
        tree.insert(100, 200, "new")
        assert tree.lookup(150) == "new"
        assert len(tree) == 1
        assert tree.stats.evictions == 1

    def test_partial_overlap_evicts(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "old")
        tree.insert(150, 250, "new")
        assert len(tree) == 1
        assert tree.lookup(120) is None    # old interval fully gone
        assert tree.lookup(200) == "new"

    def test_covering_insert_evicts_many(self):
        tree = IntervalSplayTree()
        tree.insert(10, 20, "a")
        tree.insert(30, 40, "b")
        tree.insert(50, 60, "c")
        tree.insert(0, 100, "big")
        assert len(tree) == 1
        assert tree.lookup(15) == "big"

    def test_adjacent_intervals_do_not_evict(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "a")
        tree.insert(200, 300, "b")
        assert len(tree) == 2
        assert tree.lookup(199) == "a"
        assert tree.lookup(200) == "b"


class TestSplayBehaviour:
    def test_iteration_in_order(self):
        tree = IntervalSplayTree()
        for start in (50, 10, 90, 30, 70):
            tree.insert(start, start + 5, start)
        assert [s for s, _, _ in tree] == [10, 30, 50, 70, 90]

    def test_hot_lookup_is_root(self):
        tree = IntervalSplayTree()
        for i in range(100):
            tree.insert(i * 10, i * 10 + 10, i)
        tree.lookup(555)
        assert tree._root.start == 550   # splayed to root

    def test_invariants_after_mixed_ops(self):
        tree = IntervalSplayTree()
        for i in range(50):
            tree.insert(i * 10, i * 10 + 10, i)
        for i in range(0, 50, 3):
            tree.remove_start(i * 10)
        tree.check_invariants()

    def test_stats(self):
        tree = IntervalSplayTree()
        tree.insert(0, 10, "a")
        tree.lookup(5)
        tree.lookup(50)
        assert tree.stats.inserts == 1
        assert tree.stats.lookups == 2
        assert tree.stats.hits == 1


# ----------------------------------------------------------------------
# Property tests against a naive model
# ----------------------------------------------------------------------
class NaiveIntervalMap:
    """Oracle: list of disjoint intervals with linear operations."""

    def __init__(self):
        self.intervals = []  # (start, end, payload)

    def insert(self, start, end, payload):
        self.intervals = [(s, e, p) for (s, e, p) in self.intervals
                          if e <= start or s >= end]
        self.intervals.append((start, end, payload))

    def lookup(self, addr):
        for s, e, p in self.intervals:
            if s <= addr < e:
                return p
        return None

    def remove_start(self, start):
        for i, (s, e, p) in enumerate(self.intervals):
            if s == start:
                del self.intervals[i]
                return p
        return None


operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 400),
                  st.integers(1, 40)),
        st.tuples(st.just("lookup"), st.integers(0, 450)),
        st.tuples(st.just("remove"), st.integers(0, 400)),
    ),
    min_size=1, max_size=120)


class TestPropertyVsModel:
    @given(operations)
    @settings(max_examples=200, deadline=None)
    def test_matches_naive_model(self, ops):
        tree = IntervalSplayTree()
        model = NaiveIntervalMap()
        tag = 0
        for op in ops:
            if op[0] == "insert":
                _, start, length = op
                tag += 1
                tree.insert(start, start + length, tag)
                model.insert(start, start + length, tag)
            elif op[0] == "lookup":
                assert tree.lookup(op[1]) == model.lookup(op[1])
            else:
                assert tree.remove_start(op[1]) == model.remove_start(op[1])
        tree.check_invariants()
        assert len(tree) == len(model.intervals)
        # Full sweep equivalence at the end.
        for addr in range(0, 450, 7):
            assert tree.lookup(addr) == model.lookup(addr)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=60,
                    unique=True))
    @settings(max_examples=100, deadline=None)
    def test_insert_then_lookup_all(self, starts):
        tree = IntervalSplayTree()
        for s in starts:
            tree.insert(s * 10, s * 10 + 10, s)
        for s in starts:
            assert tree.lookup(s * 10 + 5) == s
        tree.check_invariants()


class TestHotCache:
    """The one-entry last-hit cache in front of lookup()."""

    def test_repeated_lookups_hit_the_cache(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "a")
        for _ in range(5):
            assert tree.lookup(150) == "a"
        stats = tree.stats
        assert stats.lookups == 5
        assert stats.hits == 5
        # First lookup descends the tree; the rest replay the cache.
        assert stats.cache_misses == 1
        assert stats.cache_hits == 4

    def test_cache_counts_partition_lookups(self):
        tree = IntervalSplayTree()
        tree.insert(0, 10, "a")
        tree.insert(100, 110, "b")
        for addr in (5, 5, 105, 105, 50):
            tree.lookup(addr)
        stats = tree.stats
        assert stats.cache_hits + stats.cache_misses == stats.lookups
        assert stats.cache_hits == 2  # the two immediate repeats
        assert stats.hits == 4        # the miss at 50 found nothing

    def test_cached_interval_respects_boundaries(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "a")
        assert tree.lookup(150) == "a"   # primes the cache
        assert tree.lookup(200) is None  # half-open end
        assert tree.lookup(99) is None

    def test_insert_invalidates_cache(self):
        # GC relocation: the object moves, its old range is reused by a
        # new object.  A stale cache entry would return the old payload.
        tree = IntervalSplayTree()
        tree.insert(100, 200, "old")
        assert tree.lookup(150) == "old"
        tree.insert(100, 200, "new")     # overlapping insert evicts
        assert tree.lookup(150) == "new"

    def test_remove_start_invalidates_cache(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "a")
        assert tree.lookup(150) == "a"
        tree.remove_start(100)
        assert tree.lookup(150) is None

    def test_remove_containing_invalidates_cache(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "a")
        assert tree.lookup(150) == "a"
        tree.remove_containing(150)
        assert tree.lookup(150) is None

    def test_clear_invalidates_cache(self):
        tree = IntervalSplayTree()
        tree.insert(100, 200, "a")
        assert tree.lookup(150) == "a"
        tree.clear()
        assert tree.lookup(150) is None

    def test_gc_relocation_scenario(self):
        # finalize(old) + intercept(new) over a shifted range: lookups
        # between the two must never see the dead interval.
        tree = IntervalSplayTree()
        tree.insert(0x1000, 0x1100, "obj@old")
        assert tree.lookup(0x1080) == "obj@old"
        tree.remove_start(0x1000)
        assert tree.lookup(0x1080) is None
        tree.insert(0x1040, 0x1140, "obj@new")
        assert tree.lookup(0x1080) == "obj@new"
        assert tree.lookup(0x1000) is None
        tree.check_invariants()
