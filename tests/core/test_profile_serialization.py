"""Tests for profile serialisation and the resolved data model."""

import io
import json

import pytest

from repro.core.analyzer import (
    PROFILE_SCHEMA,
    AnalysisResult,
    analyze_profiles,
)
from repro.core.profile import (
    ObjectSiteStats,
    ResolvedFrame,
    ResolvedSite,
    ThreadProfile,
    decode_resolved_path,
    encode_resolved_path,
)

EVENT = "MEM_LOAD_UOPS_RETIRED:L1_MISS"


def resolver(frame):
    method_id, bci = frame
    return ResolvedFrame("C", f"m{method_id}", "C.java", bci)


def sample_profile():
    profile = ThreadProfile(tid=3)
    stats = profile.site(((1, 10), (2, 20)))
    stats.record_allocation("int[]", 2048)
    stats.record_allocation("int[]", 4096)
    profile.record_total(EVENT)
    stats.record_sample(EVENT, ((1, 10), (2, 25)), remote=True)
    profile.record_total(EVENT)
    profile.record_unknown(EVENT)
    return profile


class TestSerialisation:
    def test_to_dict_structure(self):
        data = sample_profile().to_dict(resolver)
        assert data["tid"] == 3
        assert data["total_samples"][EVENT] == 2
        assert data["unknown_samples"][EVENT] == 1
        (site,) = data["sites"]
        assert site["alloc_count"] == 2
        assert site["allocated_bytes"] == 6144
        assert site["min_size"] == 2048
        assert site["max_size"] == 4096
        assert site["remote_samples"] == 1
        assert site["path"] == [["C", "m1", "C.java", 10],
                                ["C", "m2", "C.java", 20]]

    def test_dump_is_valid_json(self):
        buffer = io.StringIO()
        sample_profile().dump(buffer, resolver)
        data = json.loads(buffer.getvalue())
        assert data["sites"][0]["metrics"][EVENT] == 1

    def test_decode_resolved_path(self):
        encoded = [["C", "m1", "C.java", 10], ["C", "m2", "C.java", 20]]
        path = decode_resolved_path(encoded)
        assert path[0] == ResolvedFrame("C", "m1", "C.java", 10)
        assert path[1].location == "C.m2:20"


class TestObjectSiteStats:
    def test_sample_accounting(self):
        stats = ObjectSiteStats(path=((1, 1),))
        stats.record_sample(EVENT, (), remote=True)
        stats.record_sample(EVENT, (), remote=False)
        stats.record_sample(EVENT, (), remote=False)
        assert stats.total_samples == 3
        assert stats.remote_samples == 1
        assert stats.metric(EVENT) == 3
        assert stats.metric("other") == 0

    def test_type_name_counting(self):
        stats = ObjectSiteStats(path=())
        stats.record_allocation("int[]", 8)
        stats.record_allocation("float[]", 8)
        stats.record_allocation("int[]", 8)
        assert stats.type_names == {"int[]": 2, "float[]": 1}


class TestPathCodec:
    def test_encode_decode_inverse(self):
        path = (ResolvedFrame("A", "f", "A.java", 3),
                ResolvedFrame("B", "g", "B.java", 17))
        assert decode_resolved_path(encode_resolved_path(path)) == path

    def test_decode_coerces_line_to_int(self):
        # JSON round-trips may widen ints; decoding re-narrows them.
        path = decode_resolved_path([["C", "m", "C.java", 7.0]])
        assert path[0].line == 7
        assert isinstance(path[0].line, int)


class TestAnalysisResultRoundTrip:
    def build(self):
        return analyze_profiles([sample_profile()], resolver, EVENT)

    def test_to_dict_schema(self):
        data = self.build().to_dict()
        assert data["schema"] == PROFILE_SCHEMA
        assert data["primary_event"] == EVENT
        assert data["total_samples"][EVENT] == 2
        assert data["unknown_samples"][EVENT] == 1

    def test_round_trip_preserves_everything(self):
        original = self.build()
        restored = AnalysisResult.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()
        assert restored.total() == original.total()
        assert restored.thread_count == original.thread_count
        assert len(restored.sites) == len(original.sites)
        for a, b in zip(original.sites, restored.sites):
            assert a.path == b.path
            assert a.alloc_count == b.alloc_count
            assert a.allocated_bytes == b.allocated_bytes
            assert a.type_names == b.type_names
            assert a.metrics == b.metrics

    def test_round_trip_preserves_ranking_and_shares(self):
        original = self.build()
        restored = AnalysisResult.from_dict(original.to_dict())
        assert ([s.location for s in restored.top_sites(5)]
                == [s.location for s in original.top_sites(5)])
        for a, b in zip(original.sites, restored.sites):
            assert restored.share(b) == pytest.approx(original.share(a))

    def test_json_round_trip(self):
        # The store path: dict -> JSON text -> dict -> AnalysisResult.
        original = self.build()
        text = json.dumps(original.to_dict(), sort_keys=True)
        restored = AnalysisResult.from_dict(json.loads(text))
        assert restored.to_dict() == original.to_dict()

    def test_schema_mismatch_rejected(self):
        data = self.build().to_dict()
        data["schema"] = "repro-analysis/99"
        with pytest.raises(ValueError, match="schema"):
            AnalysisResult.from_dict(data)


class TestResolvedSite:
    def frame(self, line=5):
        return ResolvedFrame("C", "m", "C.java", line)

    def test_leaf_and_location(self):
        site = ResolvedSite(path=(self.frame(1), self.frame(9)))
        assert site.leaf.line == 9
        assert site.location == "C.m:9"

    def test_empty_path(self):
        site = ResolvedSite(path=())
        assert site.leaf is None
        assert site.location == "<unknown>"

    def test_remote_ratio(self):
        site = ResolvedSite(path=(), remote_samples=3, local_samples=1)
        assert site.remote_ratio == pytest.approx(0.75)
        assert ResolvedSite(path=()).remote_ratio == 0.0

    def test_dominant_type(self):
        site = ResolvedSite(path=(), type_names={"a": 1, "b": 5})
        assert site.dominant_type() == "b"
        assert ResolvedSite(path=()).dominant_type() == "<unknown>"
