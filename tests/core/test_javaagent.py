"""Unit tests for the Java agent's bytecode instrumentation."""

import pytest

from repro.heap.layout import Kind
from repro.jvm import JProgram, Machine, MethodBuilder, Op, verify_program
from repro.core.javaagent import (
    ALLOC_HOOK,
    AllocationSite,
    allocation_site_count,
    instrument_method,
    instrument_program,
)

from tests.jvm.helpers import counting_loop


def alloc_in_loop_method():
    b = MethodBuilder("C", "m", first_line=100)
    counting_loop(b, 5, 0,
                  lambda b: b.line(105).iconst(16).newarray(Kind.INT)
                  .store(1).line(100))
    b.ret()
    return b.build()


class TestInstrumentMethod:
    def test_hook_inserted_after_each_allocation(self):
        m = instrument_method(alloc_in_loop_method())
        ops = [i.op for i in m.code]
        idx = ops.index(Op.NEWARRAY)
        assert ops[idx + 1] is Op.DUP
        assert ops[idx + 2] is Op.NATIVE
        assert m.code[idx + 2].args[0] == ALLOC_HOOK

    def test_site_constant_describes_allocation(self):
        original = alloc_in_loop_method()
        m = instrument_method(original)
        native = next(i for i in m.code if i.op is Op.NATIVE)
        site = native.args[3]
        assert isinstance(site, AllocationSite)
        assert site.class_name == "C"
        assert site.method_name == "m"
        assert site.line == 105
        assert site.opcode == "newarray"
        assert original.code[site.bci].op is Op.NEWARRAY

    def test_branch_targets_remapped(self):
        original = alloc_in_loop_method()
        m = instrumented = instrument_method(original)
        # Behaviour must be identical: run both and compare allocations.
        assert len(m.code) == len(original.code) + 2  # DUP + NATIVE

    def test_methods_without_allocations_untouched(self):
        b = MethodBuilder("C", "m")
        b.iconst(1).pop().ret()
        m = b.build()
        assert instrument_method(m) is m

    def test_all_four_allocation_opcodes_hooked(self):
        b = MethodBuilder("C", "m")
        b.new("K").pop()
        b.iconst(4).newarray(Kind.INT).pop()
        b.iconst(4).anewarray().pop()
        b.iconst(2).iconst(2).multianewarray(Kind.INT, 2).pop()
        b.ret()
        m = instrument_method(b.build())
        hooks = [i for i in m.code if i.op is Op.NATIVE
                 and i.args[0] == ALLOC_HOOK]
        assert len(hooks) == 4
        assert {h.args[3].opcode for h in hooks} == {
            "new", "newarray", "anewarray", "multianewarray"}

    def test_instrumented_code_verifies(self):
        # instrument_method verifies internally; this checks it doesn't
        # raise for loops with backward branches around allocations.
        instrument_method(alloc_in_loop_method())


class TestInstrumentProgram:
    def build_program(self):
        p = JProgram("orig")
        p.add_method(alloc_in_loop_method())
        p.add_entry("m")
        return p

    def test_original_program_untouched(self):
        p = self.build_program()
        before = len(p.method("m").code)
        instrument_program(p)
        assert len(p.method("m").code) == before

    def test_instrumented_program_verifies(self):
        p2 = instrument_program(self.build_program())
        verify_program(p2)

    def test_behaviour_preserved(self):
        p = self.build_program()
        plain = Machine(p).run()
        p2 = instrument_program(p)
        machine = Machine(p2)
        machine.register_native(ALLOC_HOOK, lambda call: None)
        hooked = machine.run()
        assert hooked.heap_allocations == plain.heap_allocations == 5

    def test_hook_receives_each_ref(self):
        p2 = instrument_program(self.build_program())
        machine = Machine(p2)
        seen = []
        machine.register_native(
            ALLOC_HOOK,
            lambda call: seen.append(call.args[0].oid))
        machine.run()
        assert len(seen) == 5
        assert len(set(seen)) == 5

    def test_allocation_site_count(self):
        p = self.build_program()
        assert allocation_site_count(p) == 1

    def test_default_hook_preinstalled(self):
        # The machine registers a default _djx_on_alloc native that
        # publishes to the observation bus, so an instrumented program
        # runs without any profiler attached.
        p2 = instrument_program(self.build_program())
        result = Machine(p2).run()
        assert result.heap_allocations == 5

    def test_unregistered_custom_hook_traps(self):
        custom = "_custom_alloc_hook"
        p2 = instrument_program(self.build_program(), hook_name=custom)
        with pytest.raises(Exception, match=custom):
            Machine(p2).run()
