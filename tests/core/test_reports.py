"""Unit tests for the text and HTML report renderers."""

import pytest

from repro.core.analyzer import analyze_profiles
from repro.core.htmlreport import render_html, write_html
from repro.core.profile import ResolvedFrame, ThreadProfile
from repro.core.report import render_numa_report, render_report, render_site

EVENT = "MEM_LOAD_UOPS_RETIRED:L1_MISS"


def resolver(frame):
    method_id, bci = frame
    return ResolvedFrame("App", f"m{method_id}", "App.java", bci + 10)


def analysis_with(sites):
    """sites: list of (frames, allocs, samples, remote)."""
    profile = ThreadProfile(0)
    for frames, allocs, samples, remote in sites:
        stats = profile.site(tuple(frames))
        for _ in range(allocs):
            stats.record_allocation("int[]", 2048)
        for i in range(samples):
            profile.record_total(EVENT)
            stats.record_sample(EVENT, ((9, 1),), remote=i < remote)
    return analyze_profiles([profile], resolver, EVENT)


SIMPLE = [([(1, 5)], 7, 12, 0)]
WITH_REMOTE = [([(1, 5)], 2, 10, 8), ([(2, 3)], 1, 2, 0)]


class TestTextReport:
    def test_header_and_totals(self):
        text = render_report(analysis_with(SIMPLE))
        assert "DJXPerf object-centric profile" in text
        assert "total samples : 12" in text
        assert "100.0%" in text   # attributed

    def test_site_block_content(self):
        analysis = analysis_with(SIMPLE)
        block = render_site(analysis, analysis.sites[0], rank=1)
        assert "#1 object int[]" in block
        assert "allocations: 7" in block
        assert "App.m1:15" in block
        assert "App.m9:11" in block       # the access context

    def test_empty_profile(self):
        text = render_report(analysis_with([]))
        assert "no samples attributed" in text

    def test_zero_metric_sites_omitted(self):
        analysis = analysis_with([([(1, 5)], 1, 5, 0),
                                  ([(2, 3)], 1, 0, 0)])
        text = render_report(analysis, top=5)
        assert "App.m1:15" in text
        assert "App.m2:13" not in text

    def test_access_context_overflow_elided(self):
        profile = ThreadProfile(0)
        stats = profile.site(((1, 5),))
        stats.record_allocation("int[]", 2048)
        for i in range(6):
            profile.record_total(EVENT)
            stats.record_sample(EVENT, ((9, i),), remote=False)
        analysis = analyze_profiles([profile], resolver, EVENT)
        block = render_site(analysis, analysis.sites[0], rank=1,
                            max_access_contexts=2)
        assert "4 more access context(s)" in block


class TestNumaReport:
    def test_remote_sites_listed(self):
        text = render_numa_report(analysis_with(WITH_REMOTE))
        assert "App.m1:15" in text
        assert "80.0% remote" in text
        assert "App.m2:13" not in text    # no remote samples

    def test_empty_numa_report(self):
        text = render_numa_report(analysis_with(SIMPLE))
        assert "no remote accesses" in text


class TestHtmlReport:
    def test_document_structure(self):
        html_text = render_html(analysis_with(WITH_REMOTE))
        assert html_text.startswith("<!DOCTYPE html>")
        assert "App.m1:15" in html_text
        assert "allocation context" in html_text
        assert "NUMA remote accesses" in html_text

    def test_escaping(self):
        profile = ThreadProfile(0)
        stats = profile.site(((1, 5),))
        stats.record_allocation("<evil>&", 2048)
        profile.record_total(EVENT)
        stats.record_sample(EVENT, (), remote=False)
        analysis = analyze_profiles([profile], resolver, EVENT)
        html_text = render_html(analysis)
        assert "<evil>" not in html_text
        assert "&lt;evil&gt;" in html_text

    def test_empty_profile_document(self):
        html_text = render_html(analysis_with([]))
        assert "no samples attributed" in html_text

    def test_write_html(self, tmp_path):
        path = str(tmp_path / "report.html")
        out = write_html(analysis_with(SIMPLE), path, title="T")
        assert out == path
        with open(path) as fp:
            assert "<title>T</title>" in fp.read()
