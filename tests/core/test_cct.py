"""Unit + property tests for the calling-context tree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cct import CallingContextTree


PATH_A = (("A", 1), ("B", 2), ("C", 3))
PATH_B = (("A", 1), ("B", 2), ("D", 4))
PATH_C = (("X", 9),)


class TestInsertion:
    def test_insert_path_returns_leaf(self):
        cct = CallingContextTree()
        leaf = cct.insert_path(PATH_A)
        assert leaf.key == ("C", 3)
        assert leaf.path() == PATH_A

    def test_common_prefixes_merge(self):
        cct = CallingContextTree()
        cct.insert_path(PATH_A)
        cct.insert_path(PATH_B)
        # A and B shared: 2 prefix nodes + 2 distinct leaves = 4 nodes.
        assert cct.node_count() - 1 == 4

    def test_reinsertion_is_idempotent(self):
        cct = CallingContextTree()
        n1 = cct.insert_path(PATH_A)
        n2 = cct.insert_path(PATH_A)
        assert n1 is n2

    def test_empty_path_is_root(self):
        cct = CallingContextTree()
        assert cct.insert_path(()) is cct.root


class TestMetrics:
    def test_record_accumulates(self):
        cct = CallingContextTree()
        cct.record(PATH_A, "misses", 3)
        cct.record(PATH_A, "misses", 2)
        assert cct.find(PATH_A).metric("misses") == 5

    def test_metrics_at_different_leaves_are_separate(self):
        cct = CallingContextTree()
        cct.record(PATH_A, "misses")
        cct.record(PATH_B, "misses", 4)
        assert cct.find(PATH_A).metric("misses") == 1
        assert cct.find(PATH_B).metric("misses") == 4

    def test_subtree_metric_is_inclusive(self):
        cct = CallingContextTree()
        cct.record(PATH_A, "misses", 1)
        cct.record(PATH_B, "misses", 2)
        shared = cct.find(PATH_A[:2])
        assert shared.subtree_metric("misses") == 3

    def test_total_metric(self):
        cct = CallingContextTree()
        cct.record(PATH_A, "m", 1)
        cct.record(PATH_C, "m", 9)
        assert cct.total_metric("m") == 10

    def test_find_missing_returns_none(self):
        cct = CallingContextTree()
        cct.insert_path(PATH_A)
        assert cct.find(PATH_C) is None


class TestWalk:
    def test_walk_visits_all_nodes(self):
        cct = CallingContextTree()
        cct.insert_path(PATH_A)
        cct.insert_path(PATH_C)
        keys = {n.key for n in cct.walk()}
        assert keys == {("A", 1), ("B", 2), ("C", 3), ("X", 9)}

    def test_leaves(self):
        cct = CallingContextTree()
        cct.insert_path(PATH_A)
        cct.insert_path(PATH_B)
        leaf_keys = {n.key for n in cct.leaves()}
        assert leaf_keys == {("C", 3), ("D", 4)}


class TestMerge:
    def test_merge_sums_metrics(self):
        a = CallingContextTree()
        a.record(PATH_A, "m", 2)
        b = CallingContextTree()
        b.record(PATH_A, "m", 3)
        a.merge_into(b)
        assert b.find(PATH_A).metric("m") == 5

    def test_merge_rekeys_frames(self):
        # JITted instances: same method, different method_ids.
        a = CallingContextTree()
        a.record(((101, 5),), "m", 1)
        b = CallingContextTree()
        b.record(((202, 5),), "m", 2)
        merged = CallingContextTree()
        # Re-key both to the method *name* so they coalesce.
        names = {101: "foo", 202: "foo"}
        a.merge_into(merged, key_fn=lambda k: (names[k[0]], k[1]))
        b.merge_into(merged, key_fn=lambda k: (names[k[0]], k[1]))
        assert merged.find(((("foo"), 5),)).metric("m") == 3

    def test_merge_is_top_down_preserving_structure(self):
        a = CallingContextTree()
        a.record(PATH_A, "m", 1)
        a.record(PATH_B, "m", 1)
        b = CallingContextTree()
        a.merge_into(b)
        assert b.node_count() == a.node_count()


class TestSerialisation:
    def test_roundtrip(self):
        cct = CallingContextTree()
        cct.record(PATH_A, "m", 7)
        cct.record(PATH_B, "n", 2)
        data = cct.to_dict(key_encoder=list)
        back = CallingContextTree.from_dict(data, key_decoder=tuple)
        assert back.find(PATH_A).metric("m") == 7
        assert back.find(PATH_B).metric("n") == 2
        assert back.node_count() == cct.node_count()


paths = st.lists(
    st.lists(st.tuples(st.sampled_from("ABCDE"), st.integers(0, 3)),
             min_size=1, max_size=5).map(tuple),
    min_size=1, max_size=30)


class TestProperties:
    @given(paths)
    @settings(max_examples=100, deadline=None)
    def test_total_equals_sum_of_records(self, ps):
        cct = CallingContextTree()
        for p in ps:
            cct.record(p, "m", 1)
        assert cct.total_metric("m") == len(ps)

    @given(paths)
    @settings(max_examples=100, deadline=None)
    def test_merge_commutes(self, ps):
        half = len(ps) // 2
        a1, a2 = CallingContextTree(), CallingContextTree()
        for p in ps[:half]:
            a1.record(p, "m")
        for p in ps[half:]:
            a2.record(p, "m")
        left = CallingContextTree()
        a1.merge_into(left)
        a2.merge_into(left)
        right = CallingContextTree()
        a2.merge_into(right)
        a1.merge_into(right)
        for p in ps:
            assert left.find(p).metric("m") == right.find(p).metric("m")
        assert left.total_metric("m") == right.total_metric("m") == len(ps)
