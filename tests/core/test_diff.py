"""Tests for profile diffing (before/after optimisation comparison)."""

import pytest

from repro.core import DjxConfig
from repro.core.analyzer import analyze_profiles
from repro.core.diff import diff_profiles
from repro.core.profile import ResolvedFrame, ThreadProfile
from repro.workloads import get_workload, run_profiled

EVENT = "MEM_LOAD_UOPS_RETIRED:L1_MISS"


def resolver(frame):
    method_id, bci = frame
    return ResolvedFrame("C", f"m{method_id}", "C.java", bci)


def analysis(site_samples):
    """site_samples: {(method_id, bci): (allocs, samples)}."""
    profile = ThreadProfile(0)
    for frame, (allocs, samples) in site_samples.items():
        stats = profile.site((frame,))
        for _ in range(allocs):
            stats.record_allocation("int[]", 128)
        for _ in range(samples):
            profile.record_total(EVENT)
            stats.record_sample(EVENT, (), remote=False)
    return analyze_profiles([profile], resolver, EVENT)


class TestSyntheticDiff:
    def test_share_movement(self):
        before = analysis({(1, 5): (10, 8), (2, 7): (1, 2)})
        after = analysis({(1, 5): (1, 1), (2, 7): (1, 9)})
        diff = diff_profiles(before, after)
        by_loc = {d.location: d for d in diff.deltas}
        assert by_loc["C.m1:5"].share_delta < 0
        assert by_loc["C.m2:7"].share_delta > 0
        assert diff.improved()[0].location == "C.m1:5"
        assert diff.regressed()[0].location == "C.m2:7"

    def test_removed_site_detected(self):
        before = analysis({(1, 5): (10, 8), (2, 7): (1, 2)})
        after = analysis({(2, 7): (1, 2)})
        diff = diff_profiles(before, after)
        removed = diff.removed_sites()
        assert [d.location for d in removed] == ["C.m1:5"]
        assert removed[0].disappeared

    def test_new_site_detected(self):
        before = analysis({(2, 7): (1, 2)})
        after = analysis({(1, 5): (3, 4), (2, 7): (1, 2)})
        diff = diff_profiles(before, after)
        new = [d for d in diff.deltas if d.appeared]
        assert [d.location for d in new] == ["C.m1:5"]

    def test_render(self):
        before = analysis({(1, 5): (10, 8)})
        after = analysis({(1, 5): (1, 1), (2, 7): (2, 9)})
        text = diff_profiles(before, after).render()
        assert "Profile diff" in text
        assert "C.m1:5" in text
        assert "->" in text

    def test_render_no_movement(self):
        before = analysis({(1, 5): (2, 4)})
        after = analysis({(1, 5): (2, 4)})
        text = diff_profiles(before, after).render()
        assert "no site's share moved" in text

    def test_empty_profiles(self):
        diff = diff_profiles(analysis({}), analysis({}))
        assert diff.deltas == []
        assert diff.before_total == 0


class TestUnresolvedSites:
    def analysis_with_unresolved(self):
        profile = ThreadProfile(0)
        stats = profile.site(((1, 5),))
        stats.record_allocation("int[]", 128)
        profile.record_total(EVENT)
        stats.record_sample(EVENT, (), remote=False)
        # An empty allocation path resolves to no leaf: the site has
        # no source identity and cannot be matched in a diff.
        orphan = profile.site(())
        orphan.record_allocation("int[]", 64)
        return analyze_profiles([profile], resolver, EVENT)

    def test_counted_not_silently_dropped(self):
        before = self.analysis_with_unresolved()
        after = analysis({(1, 5): (1, 1)})
        diff = diff_profiles(before, after)
        assert diff.unresolved_sites == 1
        # The resolvable site still diffs normally.
        assert [d.location for d in diff.deltas] == ["C.m1:5"]

    def test_counted_across_both_inputs(self):
        before = self.analysis_with_unresolved()
        after = self.analysis_with_unresolved()
        assert diff_profiles(before, after).unresolved_sites == 2

    def test_zero_when_all_resolve(self):
        before = analysis({(1, 5): (2, 3)})
        after = analysis({(1, 5): (2, 3)})
        assert diff_profiles(before, after).unresolved_sites == 0

    def test_rendered_in_report(self):
        before = self.analysis_with_unresolved()
        after = self.analysis_with_unresolved()
        text = diff_profiles(before, after).render()
        assert "2 site(s) with unresolvable leaves excluded" in text

    def test_not_rendered_when_zero(self):
        text = diff_profiles(analysis({(1, 5): (1, 1)}),
                             analysis({(1, 5): (1, 1)})).render()
        assert "unresolvable" not in text


class TestWorkloadDiff:
    def test_hoisting_collapses_allocation_count(self):
        workload = get_workload("objectlayout")
        config = DjxConfig(sample_period=32)
        before = run_profiled(workload, "baseline", config).analysis
        after = run_profiled(workload, "hoisted", config).analysis
        diff = diff_profiles(before, after)
        culprit = next(d for d in diff.deltas
                       if d.location == "Objectlayout.run:292")
        # The bloat is gone: 40 allocations collapse to the singleton.
        assert culprit.before_allocs == 40
        assert culprit.after_allocs == 1
        # The reused array still tops the L1-miss profile (its lines are
        # evicted by the other work either way — the win is that the
        # misses now refill from warm L2/L3 instead of cold DRAM, which
        # shows up in cycles, not in the L1-miss *share*).
        assert culprit.before_share > 0.3
        assert culprit.after_share > 0.0
