"""Execution-engine parity for the profiler families.

The legacy single-step interpreter, the compiled-dispatch fast path and
the fused superinstruction engine must feed families the exact same
event stream: one planted workload per family produces byte-identical
analyses under all three engines.
"""

import dataclasses
import json

import pytest

from repro.core.javaagent import instrument_program
from repro.families import make_family
from repro.jvm.machine import Machine
from repro.workloads import get_workload

PERIOD = 64

ENGINES = {
    "legacy": dict(fastpath=False, fused=False),
    "compiled": dict(fastpath=True, fused=False),
    "fused": dict(fastpath=True, fused=True),
}

CASES = [("dup-tables", "replica"), ("silent-loads", "redundancy")]


def _run(name, family, engine):
    workload = get_workload(name)
    program = instrument_program(workload.build_verified())
    config = dataclasses.replace(workload.machine_config(),
                                 **ENGINES[engine])
    machine = Machine(program, config)
    profiler = make_family(family, machine, sample_period=PERIOD).attach()
    machine.run()
    return json.dumps(profiler.analyze().to_dict(), sort_keys=True)


@pytest.mark.parametrize("name,family", CASES)
def test_engines_produce_identical_family_analyses(name, family):
    legacy = _run(name, family, "legacy")
    compiled = _run(name, family, "compiled")
    fused = _run(name, family, "fused")
    assert compiled == legacy
    assert fused == legacy
