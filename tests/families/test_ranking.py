"""Planted-site ranking: each family finds its planted inefficiency.

The acceptance bar for the profiler families: on every planted
workload, the planted allocation site ranks #1 for its family at
sampling periods 64, 13 and 1 — live, and byte-identically when the
recorded trace is replayed offline.
"""

import json

import pytest

from repro.core import DjxConfig
from repro.families import replay_family
from repro.workloads import get_workload, run_profiled
from repro.workloads.planted import PLANTED_SITES

PERIODS = (64, 13, 1)


def _canon(analysis) -> str:
    return json.dumps(analysis.to_dict(), sort_keys=True)


@pytest.mark.parametrize("period", PERIODS)
@pytest.mark.parametrize("name", sorted(PLANTED_SITES))
class TestPlantedRanking:
    def test_planted_site_ranks_first_live_and_replayed(
            self, name, period, tmp_path):
        family, (cls, method, line) = PLANTED_SITES[name]
        trace = str(tmp_path / f"{name}-{period}.trace.jsonl.gz")
        run = run_profiled(get_workload(name),
                           config=DjxConfig(sample_period=period),
                           family=family, trace_path=trace)
        analysis = run.analysis

        top = analysis.top_sites(2)
        leaf = top[0].leaf
        assert (leaf.class_name, leaf.method_name, leaf.line) \
            == (cls, method, line)
        # The planted site dominates, it does not win a tie.
        primary = analysis.primary_event
        assert top[0].metric(primary) > 0
        if len(top) > 1:
            assert top[0].metric(primary) > top[1].metric(primary)

        replayed = replay_family(trace, family, sample_period=period,
                                 size_threshold=DjxConfig().size_threshold)
        assert _canon(replayed) == _canon(analysis)


class TestFixedVariantRemovesSignal:
    @pytest.mark.parametrize("name", sorted(PLANTED_SITES))
    def test_fixed_variant_clears_planted_site(self, name):
        family, (cls, method, line) = PLANTED_SITES[name]
        run = run_profiled(get_workload(name), variant="fixed",
                           config=DjxConfig(sample_period=64),
                           family=family)
        site = run.analysis.site_at(cls, method, line)
        if site is not None:
            assert site.metric(run.analysis.primary_event) == 0
