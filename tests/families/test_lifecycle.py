"""Capability-union lifecycle: families on the shared event bus.

The bus builds AccessEvents/AllocEvents only while the refcounted union
of subscribed collectors wants them.  Families are the first in-tree
collectors that set ``wants_accesses``, so these tests pin that
attaching one opts the machine into the access stream, detaching drops
it back out, and running alongside DJXPerf keeps both profilers whole.
"""

from repro.baselines.codecentric import CodeCentricProfiler
from repro.core import DjxConfig, DJXPerf
from repro.core.javaagent import instrument_program
from repro.families import make_family
from repro.families.redundancy import RedundancyProfiler
from repro.families.replica import ReplicaProfiler
from repro.jvm.machine import Machine
from repro.workloads import get_workload
from repro.workloads.planted import PLANTED_SITES

PERIOD = 64


def _machine(name="dup-strings"):
    workload = get_workload(name)
    program = instrument_program(workload.build_verified())
    return Machine(program, workload.machine_config())


class TestCapabilityUnion:
    def test_family_attach_raises_both_refcounts(self):
        machine = _machine()
        bus = machine.bus
        assert (bus._accesses_wanted, bus._allocs_wanted) == (0, 0)
        replica = ReplicaProfiler(sample_period=PERIOD).attach(machine)
        assert (bus._accesses_wanted, bus._allocs_wanted) == (1, 1)
        redundancy = RedundancyProfiler(sample_period=PERIOD).attach(machine)
        assert (bus._accesses_wanted, bus._allocs_wanted) == (2, 2)
        redundancy.detach()
        assert (bus._accesses_wanted, bus._allocs_wanted) == (1, 1)
        replica.detach()
        assert (bus._accesses_wanted, bus._allocs_wanted) == (0, 0)

    def test_djxperf_contributes_allocs_only(self):
        machine = _machine()
        bus = machine.bus
        djx = DJXPerf(DjxConfig(sample_period=PERIOD))
        djx.attach(machine)
        assert (bus._accesses_wanted, bus._allocs_wanted) == (0, 1)
        family = RedundancyProfiler(sample_period=PERIOD).attach(machine)
        assert (bus._accesses_wanted, bus._allocs_wanted) == (1, 2)
        family.detach()
        # DJXPerf's alloc subscription survives the family's departure.
        assert (bus._accesses_wanted, bus._allocs_wanted) == (0, 1)

    def test_zero_capability_collectors_build_no_events(self):
        # A family attached then detached before the run must leave the
        # machine on the demand-driven skip path: a samples-only
        # collector set builds zero Access/Alloc events end to end.
        machine = _machine()
        RedundancyProfiler(sample_period=PERIOD).attach(machine).detach()
        perf = CodeCentricProfiler(sample_period=PERIOD)
        perf.attach(machine)
        machine.run()
        bus = machine.bus
        assert sum(perf.total_samples.values()) > 0
        assert bus.access_events_built == 0
        assert bus.alloc_events_built == 0

    def test_attached_family_restores_both_streams(self):
        machine = _machine()
        family = ReplicaProfiler(sample_period=PERIOD).attach(machine)
        machine.run()
        bus = machine.bus
        assert bus.access_events_built > 0
        assert bus.alloc_events_built > 0
        assert family.stats.accesses_seen == bus.access_events_built
        assert family.stats.allocations_seen == bus.alloc_events_built


class TestCoexistenceWithDjxperf:
    def test_family_and_djxperf_both_profile_one_run(self):
        workload = get_workload("dup-strings")
        program = instrument_program(workload.build_verified())
        machine = Machine(program, workload.machine_config())
        djx = DJXPerf(DjxConfig(sample_period=PERIOD))
        djx.attach(machine)
        family = ReplicaProfiler(sample_period=PERIOD).attach(machine)
        machine.run()

        _, (cls, method, line) = PLANTED_SITES["dup-strings"]
        analysis = family.analyze()
        top = analysis.top_sites(1)[0].leaf
        assert (top.class_name, top.method_name, top.line) \
            == (cls, method, line)
        # DJXPerf still resolves sites from the same run.
        djx_analysis = djx.analyze()
        assert djx_analysis.sites
        assert djx.agent.stats.allocations_seen > 0

    def test_detach_midstream_freezes_family_state(self):
        machine = _machine()
        family = make_family("redundancy", machine,
                             sample_period=PERIOD).attach()
        family.detach()
        machine.run()
        assert family.stats.accesses_seen == 0
        assert family.stats.allocations_seen == 0
        assert machine.bus.access_events_built == 0
