"""Unit tests for the family detection logic, fed synthetic events.

Offline profilers (``machine=None``) driven directly through
``handle_batch`` — the same entry point trace replay uses — so these
tests pin the exact shadow-state semantics without a simulator run.
"""

import json

import pytest

from repro.core.profile import ResolvedFrame
from repro.families.redundancy import RedundancyProfiler
from repro.families.replica import ReplicaProfiler
from repro.memsys.hierarchy import AccessResult
from repro.obs.events import (
    AccessEvent,
    AllocEvent,
    GcFinalizeEvent,
    GcMoveEvent,
    GcNotifyEvent,
    SampleEvent,
    SamplerOpenEvent,
)
from repro.pmu.events import L1_MISS


def _resolver(frame):
    return ResolvedFrame("C", "m", "C.java", frame[1])


def _offline(cls, **kwargs):
    profiler = cls(machine=None, charge_overhead=False, **kwargs)
    profiler.enabled = True
    return profiler


def _alloc(addr, size=64, tid=1, type_name="int[]", line=10):
    return AllocEvent(tid, addr, addr + size, size, type_name,
                      ((7, line),))


def _access(addr, value, is_write, tid=1):
    result = AccessResult(addr, 8, is_write, 0, "L1", 4,
                          0, 0, 0, 0, 0, False)
    return AccessEvent(tid, result, value=value)


def _store(addr, value, tid=1):
    return _access(addr, value, True, tid=tid)


def _load(addr, value, tid=1):
    return _access(addr, value, False, tid=tid)


def _gc_cycle(*moves):
    events = [GcMoveEvent(oid=i, src=src, dst=dst, size=size)
              for i, (src, dst, size) in enumerate(moves)]
    events.append(GcNotifyEvent(gc_id=1, reclaimed_objects=0,
                                reclaimed_bytes=0, moved_objects=len(moves),
                                moved_bytes=sum(m[2] for m in moves),
                                live_bytes=0, pause_cycles=0))
    return events


def _site(analysis, line):
    return analysis.site_at("C", "m", line)


class TestRedundancyStateMachine:
    def test_dead_silent_store_and_silent_load_sequence(self):
        p = _offline(RedundancyProfiler)
        p.handle_batch([
            _alloc(1000),
            _store(1000, 1),      # pending
            _store(1000, 2),      # dead store (1 never loaded)
            _store(1000, 2),      # dead store + silent store
            _load(1000, 2),       # clears pending, primes loaded
            _load(1000, 2),       # silent load
        ])
        site = _site(p.analyze(_resolver), 10)
        assert site.metrics["stores"] == 3
        assert site.metrics["loads"] == 2
        assert site.metrics["dead-stores"] == 2
        assert site.metrics["silent-stores"] == 1
        assert site.metrics["silent-loads"] == 1
        assert site.metrics["redundancy"] == 4
        # 4 redundant out of 5 tracked accesses.
        assert site.metrics["redundancy-permille"] == 800

    def test_load_clears_pending_store(self):
        p = _offline(RedundancyProfiler)
        p.handle_batch([
            _alloc(1000),
            _store(1000, 1),
            _load(1000, 1),
            _store(1000, 2),      # previous store was loaded: not dead
        ])
        site = _site(p.analyze(_resolver), 10)
        assert site.metrics.get("dead-stores", 0) == 0

    def test_distinct_values_are_not_silent(self):
        p = _offline(RedundancyProfiler)
        p.handle_batch([
            _alloc(1000),
            _store(1000, 1),
            _load(1000, 1),
            _load(1000, 7),       # value changed (e.g. other writer)
        ])
        site = _site(p.analyze(_resolver), 10)
        assert site.metrics.get("silent-loads", 0) == 0

    def test_offsets_are_independent_cells(self):
        p = _offline(RedundancyProfiler)
        p.handle_batch([
            _alloc(1000),
            _store(1000, 5),
            _store(1008, 5),      # different cell: no dead/silent store
        ])
        site = _site(p.analyze(_resolver), 10)
        assert site.metrics.get("redundancy", 0) == 0
        assert p._shadow_cells() == 2

    def test_finalize_counts_pending_stores_as_dead(self):
        p = _offline(RedundancyProfiler)
        p.handle_batch([
            _alloc(1000, tid=1),
            _store(1000, 1, tid=1),
            _store(1008, 2, tid=2),   # attributed to the storing thread
            GcFinalizeEvent(oid=0, addr=1000, size=64, type_name="int[]"),
        ])
        analysis = p.analyze(_resolver)
        assert _site(analysis, 10).metrics["dead-stores"] == 2
        assert p.profiles[2].sites  # tid 2's profile carries its hit

    def test_live_pending_stores_are_not_dead(self):
        p = _offline(RedundancyProfiler)
        p.handle_batch([_alloc(1000), _store(1000, 1)])
        site = _site(p.analyze(_resolver), 10)
        assert site.metrics.get("dead-stores", 0) == 0

    def test_valueless_and_untracked_accesses_skipped(self):
        p = _offline(RedundancyProfiler)
        p.handle_batch([
            _alloc(1000),
            _access(1000, None, True),   # bulk walk: no value
            _store(5000, 1),             # untracked address
        ])
        assert p.stats.accesses_untracked == 2
        site = _site(p.analyze(_resolver), 10)
        assert site.metrics.get("stores", 0) == 0

    def test_cells_follow_gc_relocation(self):
        p = _offline(RedundancyProfiler)
        p.handle_batch([_alloc(1000), _store(1008, 5)])
        p.handle_batch(_gc_cycle((1000, 2000, 64)))
        p.handle_batch([_load(2008, 5), _load(2008, 5)])
        site = _site(p.analyze(_resolver), 10)
        assert site.metrics["silent-loads"] == 1
        assert p.stats.relocations_applied == 1
        assert p._lookup(2008) is p._lookup(2000)
        assert p._lookup(1008) is None


class TestReplicaGrouping:
    def test_duplicate_contents_counted_once_canonical_free(self):
        p = _offline(ReplicaProfiler)
        p.handle_batch([
            _alloc(1000), _store(1000, 7),
            _alloc(2000), _store(2000, 7),     # replica of the first
            _alloc(3000), _store(3000, 8),     # distinct contents
        ])
        site = _site(p.analyze(_resolver), 10)
        assert site.metrics["replicas"] == 1
        assert site.metrics["replica-bytes"] == 64

    def test_never_written_objects_are_replicas(self):
        p = _offline(ReplicaProfiler)
        p.handle_batch([_alloc(1000), _alloc(2000), _alloc(3000)])
        site = _site(p.analyze(_resolver), 10)
        assert site.metrics["replicas"] == 2

    def test_type_and_size_split_replica_groups(self):
        p = _offline(ReplicaProfiler)
        p.handle_batch([
            _alloc(1000, type_name="int[]"),
            _alloc(2000, type_name="long[]"),
            _alloc(3000, size=128),
        ])
        site = _site(p.analyze(_resolver), 10)
        assert site.metrics.get("replicas", 0) == 0

    def test_dead_objects_keep_contents_for_grouping(self):
        p = _offline(ReplicaProfiler)
        p.handle_batch([
            _alloc(1000), _store(1000, 7),
            GcFinalizeEvent(oid=0, addr=1000, size=64, type_name="int[]"),
            _alloc(2000), _store(2000, 7),
        ])
        site = _site(p.analyze(_resolver), 10)
        assert site.metrics["replicas"] == 1

    def test_shadow_follows_gc_relocation(self):
        p = _offline(ReplicaProfiler)
        p.handle_batch([_alloc(1000), _store(1000, 7)])
        p.handle_batch(_gc_cycle((1000, 2000, 64)))
        p.handle_batch([_store(2008, 9),      # offset 8 of the moved object
                        _alloc(3000), _store(3000, 7), _store(3008, 9)])
        site = _site(p.analyze(_resolver), 10)
        assert site.metrics["replicas"] == 1

    def test_sampled_misses_weight_the_score(self):
        p = _offline(ReplicaProfiler)
        p.handle_batch([
            SamplerOpenEvent(sampler_id=3, event=L1_MISS.name, period=64,
                             owner="replica"),
            _alloc(1000), _store(1000, 7),
            _alloc(2000), _store(2000, 7),
            SampleEvent(sampler_id=3, event=L1_MISS.name, tid=1, cpu=0,
                        address=2000, size=8, is_write=False, latency=40,
                        level="DRAM", home_node=0, remote=False,
                        path=((7, 10),)),
        ])
        site = _site(p.analyze(_resolver), 10)
        # replica-bytes * (1 + misses) = 64 * 2
        assert site.metrics["replica-score"] == 128

    def test_foreign_sampler_ids_ignored(self):
        p = _offline(ReplicaProfiler)
        p.handle_batch([
            SamplerOpenEvent(sampler_id=4, event=L1_MISS.name, period=64,
                             owner="djxperf"),
            _alloc(1000),
            SampleEvent(sampler_id=4, event=L1_MISS.name, tid=1, cpu=0,
                        address=1000, size=8, is_write=False, latency=40,
                        level="DRAM", home_node=0, remote=False,
                        path=((7, 10),)),
        ])
        assert p.stats.samples_handled == 0


class TestSharedMachinery:
    @pytest.mark.parametrize("cls", [ReplicaProfiler, RedundancyProfiler])
    def test_size_threshold_filters_allocations(self, cls):
        p = _offline(cls, size_threshold=128)
        p.handle_batch([_alloc(1000, size=64), _store(1000, 1)])
        assert p.stats.allocations_filtered == 1
        assert len(p.splay) == 0
        assert p.stats.accesses_untracked == 1

    @pytest.mark.parametrize("cls", [ReplicaProfiler, RedundancyProfiler])
    def test_unknown_gc_moves_not_adopted(self, cls):
        p = _offline(cls)
        p.handle_batch(_gc_cycle((9000, 9500, 64)))
        assert p.stats.relocations_unknown == 1
        assert len(p.splay) == 0

    @pytest.mark.parametrize("cls", [ReplicaProfiler, RedundancyProfiler])
    def test_analyze_is_idempotent(self, cls):
        p = _offline(cls)
        p.handle_batch([
            _alloc(1000), _store(1000, 7), _store(1000, 7),
            _alloc(2000), _store(2000, 7),
            _load(2000, 7), _load(2000, 7),
        ])
        first = json.dumps(p.analyze(_resolver).to_dict(), sort_keys=True)
        second = json.dumps(p.analyze(_resolver).to_dict(), sort_keys=True)
        assert first == second

    @pytest.mark.parametrize("cls", [ReplicaProfiler, RedundancyProfiler])
    def test_memory_footprint_grows_with_shadow_state(self, cls):
        p = _offline(cls)
        empty = p.memory_footprint()
        p.handle_batch([_alloc(1000), _store(1000, 1), _store(1008, 2)])
        assert p.memory_footprint() > empty
        assert p._shadow_cells() == 2
