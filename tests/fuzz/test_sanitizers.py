"""Sanitizer true positives: inject corruptions, expect precise reports.

Each test corrupts one structure the way a real bug would and asserts
the matching sanitizer fires *and names the offending object/context* —
a sanitizer that only says "something is wrong" is not worth running.
"""

import pytest

from repro.core import DJXPerf, DjxConfig
from repro.core.cct import CallingContextTree
from repro.core.splay import IntervalSplayTree, _Node
from repro.fuzz.generator import build_program, generate_spec
from repro.fuzz.oracles import machine_config
from repro.fuzz.sanitizers import (
    MachineStateSanitizer,
    SanitizerError,
    check_cct,
    check_relocation_map_drained,
    check_splay,
)
from repro.fuzz.shrinker import shrink_spec
from repro.jvm.machine import Machine


class TestSplayInjection:
    def test_overlapping_intervals_reported(self):
        tree = IntervalSplayTree()
        tree.insert(0x100, 0x140, "a")
        # insert() evicts overlaps, so graft the corrupt node directly —
        # the state a buggy rotation or missed eviction would leave.
        tree._root.right = _Node(0x120, 0x160, "b")
        tree._size = 2
        violations = check_splay(tree)
        overlap = [v for v in violations if "overlap" in v.message]
        assert overlap, violations
        assert overlap[0].context == ("a", "b")

    def test_stale_hot_cache_reported(self):
        tree = IntervalSplayTree()
        tree.insert(0x100, 0x140, "a")
        tree._hot = _Node(0x200, 0x240, "ghost")  # points outside the tree
        violations = check_splay(tree)
        assert any("cache" in v.message and v.context == ("ghost",)
                   for v in violations), violations

    def test_clean_tree_passes(self):
        tree = IntervalSplayTree()
        tree.insert(0x100, 0x140, "a")
        tree.insert(0x140, 0x180, "b")
        assert check_splay(tree) == []


class TestRelocationInjection:
    def test_stale_entry_reported_by_pure_check(self):
        class FakeAgent:
            _relocation_map = {0x1000: (0x2000, 32)}

        violations = check_relocation_map_drained(FakeAgent())
        assert len(violations) == 1
        assert "stale" in violations[0].message
        assert (0x1000, (0x2000, 32)) in violations[0].context

    def test_stale_entry_fires_live_at_quantum_boundary(self):
        # A relocation-map entry with no GC to drain it must trip the
        # sanitizer at the first batch flush of a real run.
        spec = generate_spec(1)
        profiler = DJXPerf(DjxConfig(sample_period=64, size_threshold=0))
        program = profiler.instrument(build_program(spec))
        machine = Machine(program, machine_config(spec))
        profiler.attach(machine)
        profiler.agent._relocation_map[0x1234] = (0x5678, 64)
        sanitizer = MachineStateSanitizer(machine, agent=profiler.agent)
        machine.bus.subscribe(sanitizer)
        with pytest.raises(SanitizerError) as exc:
            machine.run()
        assert "stale relocation-map" in str(exc.value)
        assert any(v.sanitizer == "relocation"
                   and (0x1234, (0x5678, 64)) in v.context
                   for v in exc.value.violations)


class TestCctInjection:
    def test_orphan_node_reported(self):
        tree = CallingContextTree()
        tree.record(("main", "a", "b"), "samples")
        tree.record(("main", "a", "c"), "samples")
        orphan = tree.root.children["main"].children["a"].children["b"]
        orphan.parent = tree.root  # detached from its real parent
        violations = check_cct(tree)
        assert any("orphan" in v.message and v.context == ("b",)
                   for v in violations), violations

    def test_clean_tree_passes(self):
        tree = CallingContextTree()
        tree.record(("main", "a", "b"), "samples")
        tree.record(("main", "a", "c"), "samples")
        assert check_cct(tree) == []


class TestShrinker:
    def test_shrinks_below_30_instructions(self):
        # Property-style predicate ("the spec still allocates a linked
        # list") stands in for a real failure; the shrinker must strip
        # everything else and land on a tiny reproducer.
        def has_list_build(spec):
            return any(b[0] == "list_build"
                       for m in spec.methods for b in m.blocks)

        spec = next(s for s in (generate_spec(seed) for seed in range(100))
                    if has_list_build(s))
        assert build_program(spec).total_instructions() >= 30
        shrunk = shrink_spec(spec, has_list_build)
        assert has_list_build(shrunk)
        assert build_program(shrunk).total_instructions() < 30
