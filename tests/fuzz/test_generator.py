"""The random-program generator: determinism, validity, serialisation."""

import pytest

from repro.core.javaagent import instrument_program
from repro.fuzz.generator import (
    FuzzKnobs,
    build_program,
    generate_spec,
    spec_from_json,
    spec_to_json,
)
from repro.jvm.verifier import verify_program

SEEDS = list(range(20))


class TestDeterminism:
    def test_same_seed_same_spec(self):
        for seed in SEEDS:
            assert generate_spec(seed) == generate_spec(seed)

    def test_same_spec_same_program(self):
        spec = generate_spec(5)
        a, b = build_program(spec), build_program(spec)
        assert a.total_instructions() == b.total_instructions()
        for name in a.methods:
            assert a.methods[name].code == b.methods[name].code

    def test_different_seeds_differ(self):
        specs = {generate_spec(seed) for seed in SEEDS}
        assert len(specs) > 1


class TestValidity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_program_verifies(self, seed):
        verify_program(build_program(generate_spec(seed)))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_instrumented_program_verifies(self, seed):
        # instrument_program re-verifies internally; this asserts the
        # generator's output survives the allocation-hook rewriting and
        # the verifier's branch-into-stretch check.
        instrument_program(build_program(generate_spec(seed)))

    def test_knobs_bound_shape(self):
        knobs = FuzzKnobs(allow_multithread=False)
        for seed in SEEDS:
            spec = generate_spec(seed, knobs)
            assert spec.threads == ("main",)


class TestSerialisation:
    @pytest.mark.parametrize("seed", (0, 7, 13))
    def test_json_round_trip(self, seed):
        spec = generate_spec(seed)
        text = spec_to_json(spec, meta={"note": "round-trip"})
        loaded, meta = spec_from_json(text)
        assert loaded == spec
        assert meta["note"] == "round-trip"
        assert (build_program(loaded).total_instructions()
                == build_program(spec).total_instructions())
