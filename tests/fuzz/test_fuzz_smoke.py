"""End-to-end fuzzing campaigns through the public harness."""

import pytest

from repro.fuzz import run_fuzz
from repro.fuzz.harness import SEED_STRIDE, iteration_seed


@pytest.mark.fuzz
def test_short_campaign_all_oracles_clean(tmp_path):
    report = run_fuzz(seed=0, iterations=10, corpus_dir=str(tmp_path))
    assert report.ok, [f.describe() for f in report.failures]
    assert report.iterations_run == 10
    assert report.oracles == ("engine", "counting", "replay", "native")
    assert not list(tmp_path.iterdir())  # nothing pinned on a clean run


@pytest.mark.fuzz
def test_iteration_seeds_are_disjoint_across_campaigns(tmp_path):
    assert iteration_seed(0, 3) == 3
    assert iteration_seed(2, 0) == 2 * SEED_STRIDE
    seen = {iteration_seed(c, i) for c in range(4) for i in range(100)}
    assert len(seen) == 400


@pytest.mark.fuzz
def test_time_budget_stops_early(tmp_path):
    report = run_fuzz(seed=0, iterations=10_000, time_budget=0.0,
                      corpus_dir=str(tmp_path))
    assert report.iterations_run < 10_000


@pytest.mark.fuzz
@pytest.mark.slow
def test_long_campaign_all_oracles_clean(tmp_path):
    # The CI smoke-fuzz configuration: 200 programs, every oracle.
    report = run_fuzz(seed=0, iterations=200, corpus_dir=str(tmp_path))
    assert report.ok, [f.describe() for f in report.failures]
    assert report.iterations_run == 200
