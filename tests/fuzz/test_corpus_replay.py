"""Replay every pinned corpus program through the full oracle matrix.

``tests/fuzz_corpus/`` holds minimised specs pinned by ``fuzz --shrink``
(past failures, kept as permanent regressions) plus hand-pinned
interesting programs.  All of them must pass every oracle on the
current tree — a pinned failure that still fails means the bug it
minimises is back.
"""

import glob
import os

import pytest

from repro.fuzz.generator import spec_from_json
from repro.fuzz.oracles import run_oracles

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "fuzz_corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_not_empty():
    assert CORPUS, f"no pinned programs under {CORPUS_DIR}"


@pytest.mark.fuzz
@pytest.mark.parametrize("path", CORPUS, ids=os.path.basename)
def test_corpus_entry_passes_all_oracles(path):
    with open(path) as fh:
        spec, _meta = spec_from_json(fh.read())
    failure = run_oracles(spec)
    assert failure is None, str(failure)
