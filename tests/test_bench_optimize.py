"""Tests for the bench harness's profile-guided optimization arm."""

import json

import pytest

from repro.bench import (
    OPTIMIZE_SUITE,
    SCHEMA,
    BenchReport,
    _check_optimize,
    check_regression,
    load_report,
)


def entry(status="accepted", speedup=1.25, transform="presize"):
    return {"family": "djxperf", "transform": transform,
            "status": status, "baseline_cycles": 1000,
            "optimized_cycles": 800, "speedup": speedup}


class TestSuite:
    def test_suite_covers_all_planted_workloads(self):
        names = {name for name, _family in OPTIMIZE_SUITE}
        assert names == {"unsized-growth", "padded-layout",
                         "boxed-counters", "redundant-fill"}

    def test_redundancy_family_is_exercised(self):
        families = {family for _name, family in OPTIMIZE_SUITE}
        assert "redundancy" in families


class TestGate:
    def test_matching_run_passes(self):
        base = {"w": entry()}
        assert _check_optimize({"w": entry()}, base, 0.20) == []

    def test_accepted_flipping_to_rejected_fails(self):
        base = {"w": entry()}
        failures = _check_optimize({"w": entry(status="rejected")},
                                   base, 0.20)
        assert failures and "regressed" in failures[0]

    def test_dropped_workload_fails(self):
        failures = _check_optimize({}, {"w": entry()}, 0.20)
        assert failures and "dropped workload w" in failures[0]

    def test_shrunken_speedup_fails(self):
        base = {"w": entry(speedup=2.0)}
        failures = _check_optimize({"w": entry(speedup=1.05)}, base, 0.20)
        assert failures and "speedup" in failures[0]

    def test_speedup_within_tolerance_passes(self):
        base = {"w": entry(speedup=1.30)}
        assert _check_optimize({"w": entry(speedup=1.20)},
                               base, 0.20) == []

    def test_committed_rejection_not_gated_on_speedup(self):
        # A workload committed as rejected is informational: the gate
        # only protects verified improvements.
        base = {"w": entry(status="rejected", speedup=0.9)}
        assert _check_optimize({"w": entry(status="rejected",
                                           speedup=0.5)},
                               base, 0.20) == []

    def test_wired_into_check_regression(self):
        report = BenchReport(rows=[], repeat=1,
                             optimize={"w": entry(status="rejected")})
        failures = check_regression(report, {"optimize": {"w": entry()}})
        assert any("optimize verdict" in f for f in failures)
        # An optimize-only report is a valid thing to check.
        assert not any("nothing to check" in f for f in failures)


class TestCommittedBaseline:
    def test_schema_and_optimize_section(self):
        data = load_report("BENCH_throughput.json")
        assert data["schema"] == SCHEMA
        section = data["optimize"]
        assert {name for name, _ in OPTIMIZE_SUITE} == set(section)
        for name, committed in section.items():
            assert committed["status"] == "accepted", name
            assert committed["speedup"] > 1.0, name
            assert committed["optimized_cycles"] \
                < committed["baseline_cycles"], name
