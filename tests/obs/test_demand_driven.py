"""Demand-driven event streams on a real simulated run.

The machine only *constructs* per-access and per-allocation events when
some subscribed collector declares it wants them — the bus tracks the
refcounted capability union.  These tests pin the acceptance criterion:
a samples-only collector set builds zero AccessEvents (and zero
AllocEvents), and attaching a trace writer restores exactly the streams
it opted into.
"""

import gzip
import json

from repro.baselines.codecentric import CodeCentricProfiler
from repro.core import DjxConfig, DJXPerf
from repro.jvm.machine import Machine
from repro.obs.trace import TraceWriter
from repro.workloads import get_workload

WORKLOAD = "objectlayout"
PERIOD = 64


def _machine(profiler=None):
    workload = get_workload(WORKLOAD)
    program = workload.build_verified()
    if profiler is not None:
        program = profiler.instrument(program)
    return Machine(program, workload.machine_config())


def _trace_tags(path):
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        return [json.loads(line)[0] for line in fh
                if line.lstrip().startswith("[")]


class TestSamplesOnly:
    def test_samples_only_builds_no_access_or_alloc_events(self):
        perf = CodeCentricProfiler(sample_period=PERIOD)
        machine = _machine()
        perf.attach(machine)
        machine.run()
        bus = machine.bus
        assert sum(perf.total_samples.values()) > 0
        assert bus.access_events_built == 0
        assert bus.alloc_events_built == 0

    def test_djxperf_wants_allocs_but_not_accesses(self):
        profiler = DJXPerf(DjxConfig(sample_period=PERIOD))
        machine = _machine(profiler)
        profiler.attach(machine)
        machine.run()
        bus = machine.bus
        assert bus.alloc_events_built > 0
        assert bus.access_events_built == 0


class TestTraceWriterRestoresStreams:
    def test_trace_writer_opts_back_into_accesses(self, tmp_path):
        perf = CodeCentricProfiler(sample_period=PERIOD)
        path = str(tmp_path / "trace.jsonl.gz")
        machine = _machine()
        writer = TraceWriter(path, machine=machine, include_accesses=True)
        writer.attach(machine)
        perf.attach(machine)
        machine.run()
        writer.close()
        bus = machine.bus
        assert bus.access_events_built > 0
        tags = _trace_tags(path)
        assert "ac" in tags
        assert "sm" in tags

    def test_default_trace_restores_allocs_but_not_accesses(self, tmp_path):
        profiler = DJXPerf(DjxConfig(sample_period=PERIOD))
        path = str(tmp_path / "trace.jsonl.gz")
        machine = _machine(profiler)
        writer = TraceWriter(path, machine=machine)
        writer.attach(machine)
        profiler.attach(machine)
        machine.run()
        writer.close()
        bus = machine.bus
        assert bus.access_events_built == 0
        assert bus.alloc_events_built > 0
        tags = _trace_tags(path)
        assert "al" in tags
        assert "ac" not in tags
