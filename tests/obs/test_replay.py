"""Record/replay equivalence and the shared multi-profiler run.

The payoff tests of the observation pipeline: (1) replaying a recorded
trace through an offline agent reproduces the live analysis *exactly*;
(2) several profiler families observe one simulated run side by side.
"""

import pytest

from repro.baselines.allocfreq import AllocFrequencyProfiler
from repro.baselines.codecentric import CodeCentricProfiler
from repro.baselines.reusedist import ReuseDistanceProfiler
from repro.core import DJXPerf, DjxConfig
from repro.core.javaagent import instrument_program
from repro.jvm import Machine
from repro.obs.replay import replay_analyze
from repro.obs.trace import TraceWriter
from repro.workloads import get_workload


def record_run(workload_name, trace_path, config=None,
               include_accesses=False):
    """Run one workload under DJXPerf while recording its trace."""
    workload = get_workload(workload_name)
    program = instrument_program(workload.build_verified())
    machine = Machine(program, workload.machine_config())
    writer = TraceWriter(str(trace_path), machine=machine,
                         include_accesses=include_accesses)
    writer.attach(machine)                 # before the profiler, so the
    profiler = DJXPerf(config or DjxConfig())   # SamplerOpenEvent lands
    profiler.attach(machine)
    machine.run()
    writer.close()
    return profiler.analyze()


def site_key(site):
    """Everything the analyzer derives for a site, for exact compares."""
    return (site.location, dict(site.metrics), site.alloc_count,
            site.allocated_bytes, site.remote_samples, site.local_samples,
            {tuple(p): dict(m) for p, m in site.access_contexts.items()})


def analysis_key(analysis):
    return (sorted(site_key(s) for s in analysis.sites),
            analysis.total_samples, analysis.unknown_samples,
            analysis.thread_count)


class TestReplayEquivalence:
    @pytest.mark.parametrize("workload", ["objectlayout", "findbugs"])
    def test_replay_reproduces_live_analysis(self, workload, tmp_path):
        path = tmp_path / f"{workload}.trace.jsonl"
        live = record_run(workload, path)
        replayed = replay_analyze(str(path))
        assert analysis_key(replayed) == analysis_key(live)

    def test_replay_with_lower_threshold_tracks_more(self, tmp_path):
        # The trace records *every* allocation (the hook fires before
        # the agent filters), so replay can lower S below the recording
        # run's value and see objects the live profiler skipped.
        path = tmp_path / "t.jsonl"
        record_run("mnemonics", path,
                   config=DjxConfig(size_threshold=1024))
        default = replay_analyze(str(path),
                                 DjxConfig(size_threshold=1024))
        everything = replay_analyze(str(path), DjxConfig(size_threshold=0))
        tracked_default = sum(s.alloc_count for s in default.sites)
        tracked_all = sum(s.alloc_count for s in everything.sites)
        assert tracked_all > tracked_default

    def test_resample_changes_period_offline(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        live = record_run("objectlayout", path, include_accesses=True)
        half = replay_analyze(
            str(path), DjxConfig(sample_period=32,
                                 collect_access_contexts=False),
            resample=True)
        # Twice the sampling rate, same deterministic access stream:
        # twice the samples, same top object.
        assert half.total() == 2 * live.total()
        assert half.top_sites(1)[0].location == \
            live.top_sites(1)[0].location

    def test_resample_without_accesses_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_run("objectlayout", path, include_accesses=False)
        with pytest.raises(ValueError, match="include_accesses"):
            replay_analyze(str(path), resample=True)


class TestFamilyReplayParity:
    """Family collectors reproduce their live analysis from a trace."""

    CASES = [("dup-strings", "replica"), ("dead-stores", "redundancy")]

    @pytest.mark.parametrize("workload,family", CASES)
    def test_family_replay_is_byte_identical(self, workload, family,
                                             tmp_path):
        import json

        from repro.families import replay_family
        from repro.workloads import run_profiled

        path = str(tmp_path / f"{workload}.trace.jsonl.gz")
        run = run_profiled(get_workload(workload), config=DjxConfig(),
                           family=family, trace_path=path)
        replayed = replay_family(path, family,
                                 sample_period=DjxConfig().sample_period,
                                 size_threshold=DjxConfig().size_threshold)
        assert json.dumps(replayed.to_dict(), sort_keys=True) \
            == json.dumps(run.analysis.to_dict(), sort_keys=True)

    def test_family_replay_needs_access_stream(self, tmp_path):
        from repro.families import replay_family

        path = tmp_path / "t.jsonl"
        record_run("dup-strings", path, include_accesses=False)
        with pytest.raises(ValueError, match="include_accesses"):
            replay_family(str(path), "replica")


class TestSharedRun:
    def test_four_profilers_observe_one_simulation(self):
        """DJXPerf + all three baselines subscribe to one machine.

        The single-run decomposition the bus makes possible: one
        simulated execution feeds four profiler families, and each
        reports its own per-collector cycle charges.
        """
        workload = get_workload("objectlayout")
        program = instrument_program(workload.build_verified())
        machine = Machine(program, workload.machine_config())

        djx = DJXPerf(DjxConfig())
        reuse = ReuseDistanceProfiler(modelled_cache_lines=128,
                                      charge_overhead=False)
        allocfreq = AllocFrequencyProfiler(charge_overhead=False)
        codecentric = CodeCentricProfiler()

        djx.attach(machine)
        reuse.attach(machine)
        allocfreq.attach(machine)
        codecentric.attach(machine)
        assert len(machine.bus.collectors) == 4
        machine.run()

        culprit = "Objectlayout.run:292"
        resolver = djx.frame_resolver()
        assert djx.analyze().top_sites(1)[0].location == culprit
        assert reuse.analyze(resolver).top_sites(1)[0].location == culprit
        assert allocfreq.analyze(resolver).top_sites(1)[0] \
                        .location == culprit
        # Code-centric profiling points at *code*, not the object: its
        # top location is the access loop, not the allocation site.
        cc_top = codecentric.analyze(resolver).top_locations(1)[0]
        assert cc_top.location.location != culprit

        # Each collector accounted for its own (hypothetical) cycles —
        # the decomposition the suite benchmark uses.
        assert djx.agent.charged_cycles > 0
        # Overhead charging was off for the baselines, so the shared
        # run's timing equals DJXPerf-alone timing.
        assert reuse.charged_cycles == 0
        assert allocfreq.charged_cycles == 0

    def test_shared_run_matches_solo_analyses(self):
        """Profilers sharing a bus see what they'd see running alone."""
        def build_machine():
            workload = get_workload("objectlayout")
            program = instrument_program(workload.build_verified())
            return Machine(program, workload.machine_config())

        solo_machine = build_machine()
        solo = ReuseDistanceProfiler(modelled_cache_lines=128,
                                     charge_overhead=False)
        solo.attach(solo_machine)
        solo_machine.run()

        shared_machine = build_machine()
        shared = ReuseDistanceProfiler(modelled_cache_lines=128,
                                       charge_overhead=False)
        djx = DJXPerf(DjxConfig())
        shared.attach(shared_machine)
        djx.attach(shared_machine)
        shared_machine.run()

        a, b = solo.analyze(), shared.analyze()
        assert a.total_accesses == b.total_accesses
        assert [s.location for s in a.top_sites(3)] \
            == [s.location for s in b.top_sites(3)]
