"""Sampler lifecycle under skip-ahead counting.

The skip-ahead fast path keeps each counter's live countdown register
(``remaining_until_overflow``) in the bus's per-thread counting plan.
Lifecycle transitions — open/close mid-run, disable/enable freezes, a
collector subscribing mid-run — must leave that state exactly where a
per-access ``perf_event_open`` counter would: closing discards, opening
re-arms already-running threads at a fresh period, disabling freezes
the register with no drift, and capability-union changes take effect
for the accesses that follow.
"""

from repro.memsys.hierarchy import AccessResult
from repro.obs.bus import NO_LIMIT, EventBus
from repro.obs.collector import Collector
from repro.obs.events import SampleEvent
from repro.pmu.events import ALL_STORES, NUM_COMBOS, L1_MISS, combo_index


class FakeThread:
    """Just enough of a JThread for the bus: tid/cpu/name + unwinding."""

    def __init__(self, tid, cpu=0, name="worker"):
        self.tid = tid
        self.cpu = cpu
        self.name = name
        self.cycles = 0
        self.stack = ((1, 5), (2, 7))

    def call_stack(self):
        return self.stack


class Recording(Collector):
    """Records every event it receives, in delivery order."""

    label = "recording"
    wants_allocs = False

    def __init__(self, wants_accesses=False):
        super().__init__()
        self.wants_accesses = wants_accesses
        self.events = []

    def handle_batch(self, events):
        self.events.extend(events)

    @property
    def samples(self):
        return [e for e in self.events if isinstance(e, SampleEvent)]


def miss(address=0x1000):
    """A single-line load that misses L1 (counts once on L1_MISS)."""
    return AccessResult(address=address, size=8, is_write=False, cpu=0,
                        level="L2", latency=12, l1_misses=1, l2_misses=0,
                        l3_misses=0, tlb_misses=0, home_node=0,
                        remote=False)


def _counter(bus, tid, sampler_id):
    for sid, counter in bus._counters[tid]:
        if sid == sampler_id:
            return counter
    raise AssertionError(f"sampler {sampler_id} not armed on tid {tid}")


def _bus_with_thread(tid=7):
    bus = EventBus()
    rec = Recording()
    bus.subscribe(rec)
    thread = FakeThread(tid)
    bus.thread_started(thread)
    return bus, rec, thread


class TestOpenCloseMidRun:
    def test_open_mid_run_arms_running_threads(self):
        bus, rec, thread = _bus_with_thread()
        # Accesses before any sampler exists are never counted.
        bus.observe_access(thread, miss())
        sid = bus.open_sampler(L1_MISS, period=4, owner="late")
        for _ in range(4):
            bus.observe_access(thread, miss())
        bus.flush()
        assert len(rec.samples) == 1
        assert bus.sampler_total(sid) == 4

    def test_close_then_reopen_rearms_at_fresh_period(self):
        bus, rec, thread = _bus_with_thread()
        first = bus.open_sampler(L1_MISS, period=4, owner="p")
        for _ in range(3):
            bus.observe_access(thread, miss())
        bus.close_sampler(first)
        assert not bus.sampling
        # Counted nowhere while closed.
        for _ in range(10):
            bus.observe_access(thread, miss())
        second = bus.open_sampler(L1_MISS, period=4, owner="p")
        counter = _counter(bus, thread.tid, second)
        assert counter.remaining_until_overflow == 4
        for _ in range(3):
            bus.observe_access(thread, miss())
        bus.flush()
        # Three of four: the old register's position did not leak in.
        assert rec.samples == []
        bus.observe_access(thread, miss())
        bus.flush()
        assert len(rec.samples) == 1

    def test_thread_started_mid_run_is_armed(self):
        bus, rec, thread = _bus_with_thread(tid=1)
        sid = bus.open_sampler(L1_MISS, period=2, owner="p")
        late = FakeThread(9)
        bus.thread_started(late)
        for _ in range(2):
            bus.observe_access(late, miss())
        bus.flush()
        assert [s.tid for s in rec.samples] == [9]
        assert bus.sampler_total(sid) == 2


class TestDisableEnableFreeze:
    def test_freeze_keeps_register_without_drift(self):
        bus, rec, thread = _bus_with_thread()
        sid = bus.open_sampler(L1_MISS, period=5, owner="p")
        counter = _counter(bus, thread.tid, sid)
        for _ in range(3):
            bus.observe_access(thread, miss())
        assert counter.remaining_until_overflow == 2
        bus.disable_sampler(sid)
        for _ in range(20):
            bus.observe_access(thread, miss())
        # Frozen exactly where it was: no counting, no drift.
        assert counter.remaining_until_overflow == 2
        assert counter.total == 3
        bus.enable_sampler(sid)
        bus.observe_access(thread, miss())
        bus.flush()
        assert rec.samples == []
        bus.observe_access(thread, miss())
        bus.flush()
        assert len(rec.samples) == 1
        assert counter.remaining_until_overflow == 5

    def test_disabled_counter_gives_no_bulk_budget_constraint(self):
        bus, rec, thread = _bus_with_thread()
        sid = bus.open_sampler(L1_MISS, period=5, owner="p")
        assert bus.bulk_budget(thread.tid, False) == 4
        bus.disable_sampler(sid)
        assert bus.bulk_budget(thread.tid, False) == NO_LIMIT
        bus.enable_sampler(sid)
        assert bus.bulk_budget(thread.tid, False) == 4


class TestBulkBudget:
    def test_write_class_split_frees_loads_only_event(self):
        bus, rec, thread = _bus_with_thread()
        bus.open_sampler(L1_MISS, period=64, owner="p")
        # L1_MISS counts no write combo: a pure-write walk (allocation
        # zeroing) needs no histogramming at all.
        assert bus.bulk_budget(thread.tid, True) == NO_LIMIT
        assert bus.bulk_budget(thread.tid, False) == 63

    def test_counting_mode_period_stays_below_sentinel(self):
        # A counting-only sampler (huge period, read sampler_total) must
        # still constrain walks to *counted* histograms: its finite
        # budget may never collapse into the NO_LIMIT sentinel.
        bus, rec, thread = _bus_with_thread()
        sid = bus.open_sampler(L1_MISS, period=1 << 62, owner="pilot")
        budget = bus.bulk_budget(thread.tid, False)
        assert 0 < budget < NO_LIMIT
        counts = [0] * NUM_COMBOS
        counts[combo_index(level="L2", tlb_missed=False, is_write=False,
                           remote=False)] = 1000
        bus.observe_bulk(thread.tid, counts)
        assert bus.sampler_total(sid) == 1000

    def test_observe_bulk_matches_per_access_counting(self):
        bus, rec, thread = _bus_with_thread()
        sid = bus.open_sampler(L1_MISS, period=64, owner="p")
        budget = bus.bulk_budget(thread.tid, False)
        counts = [0] * NUM_COMBOS
        counts[combo_index(level="L2", tlb_missed=False, is_write=False,
                           remote=False)] = budget
        bus.observe_bulk(thread.tid, counts)
        counter = _counter(bus, thread.tid, sid)
        assert counter.total == budget
        assert counter.remaining_until_overflow == 64 - budget
        # The next access overflows, exactly as 64 per-access counts
        # would have.
        bus.observe_access(thread, miss())
        bus.flush()
        assert len(rec.samples) == 1
        assert counter.remaining_until_overflow == 64

    def test_mixed_walk_budget_is_worst_write_class(self):
        # A fused superinstruction block may interleave loads and
        # stores; budgeting with is_write=None must bound each counter
        # by its worse write-class so no interleaving can overflow.
        bus, rec, thread = _bus_with_thread()
        bus.open_sampler(L1_MISS, period=64, owner="p")      # loads only
        assert bus.bulk_budget(thread.tid, None) == 63
        bus.open_sampler(ALL_STORES, period=10, owner="p")   # stores only
        assert bus.bulk_budget(thread.tid, False) == 63
        assert bus.bulk_budget(thread.tid, True) == 9
        assert bus.bulk_budget(thread.tid, None) == 9

    def test_observe_bulk_map_matches_dense_histogram(self):
        # The sparse fused-block variant must count exactly like the
        # dense observe_bulk path.
        combo = combo_index(level="L2", tlb_missed=False, is_write=False,
                            remote=False)
        write_combo = combo_index(level="DRAM", tlb_missed=True,
                                  is_write=True, remote=False)
        bus_a, _, thread_a = _bus_with_thread()
        sid_a = bus_a.open_sampler(L1_MISS, period=64, owner="p")
        bus_a.observe_bulk_map(thread_a.tid, {combo: 5, write_combo: 7})
        bus_b, _, thread_b = _bus_with_thread()
        sid_b = bus_b.open_sampler(L1_MISS, period=64, owner="p")
        dense = [0] * NUM_COMBOS
        dense[combo] = 5
        dense[write_combo] = 7
        bus_b.observe_bulk(thread_b.tid, dense)
        ca = _counter(bus_a, thread_a.tid, sid_a)
        cb = _counter(bus_b, thread_b.tid, sid_b)
        # L1_MISS counts no write combo: only the 5 load misses land.
        assert ca.total == cb.total == 5
        assert ca.remaining_until_overflow == \
            cb.remaining_until_overflow == 59


class TestCapabilityUnionMidRun:
    def test_subscribe_mid_run_upgrades_union_for_next_accesses(self):
        bus, rec, thread = _bus_with_thread()
        bus.open_sampler(L1_MISS, period=1, owner="p")
        bus.observe_access(thread, miss())
        bus.flush()
        assert bus.access_events_built == 0
        # An access-hungry collector joins mid-run: the refcounted
        # union flips and the very next access builds an AccessEvent.
        tracer = Recording(wants_accesses=True)
        bus.subscribe(tracer)
        assert bus._accesses_wanted == 1
        bus.observe_access(thread, miss())
        bus.flush()
        assert bus.access_events_built == 1
        assert [e.kind for e in tracer.events[-2:]] == ["sample", "access"]
        bus.unsubscribe(tracer)
        assert bus._accesses_wanted == 0
        bus.observe_access(thread, miss())
        assert bus.access_events_built == 1

    def test_upgrade_from_within_batch_delivery(self):
        # A collector that reacts to its first sample by attaching a
        # tracer (attach-mode profiling): the union upgrade lands at
        # the flush boundary, i.e. by the next quantum's accesses.
        bus, rec, thread = _bus_with_thread()
        tracer = Recording(wants_accesses=True)

        class AttachOnSample(Collector):
            label = "attacher"
            wants_allocs = False

            def on_sample(self, event):
                if tracer.bus is None:
                    bus.subscribe(tracer)

        bus.subscribe(AttachOnSample())
        bus.open_sampler(L1_MISS, period=1, owner="p")
        bus.observe_access(thread, miss())
        bus.flush()
        assert bus.access_events_built == 0
        bus.observe_access(thread, miss())
        bus.flush()
        assert bus.access_events_built == 1
        assert [e.kind for e in tracer.events] == ["sample", "access"]
