"""Unit tests for the observation event bus (ring, flush, samplers)."""

import pytest

from repro.memsys.hierarchy import AccessResult
from repro.obs.bus import EventBus
from repro.obs.collector import Collector
from repro.obs.events import (
    AccessEvent,
    AllocEvent,
    GcMoveEvent,
    SampleEvent,
    SamplerOpenEvent,
    ThreadEndEvent,
    ThreadStartEvent,
)
from repro.pmu.events import ALL_LOADS, L1_MISS


class FakeThread:
    """Just enough of a JThread for the bus: tid/cpu/name + unwinding."""

    def __init__(self, tid, cpu=0, name="worker"):
        self.tid = tid
        self.cpu = cpu
        self.name = name
        self.stack = ((1, 5), (2, 7))

    def call_stack(self):
        return self.stack


class Recording(Collector):
    """Records every batch it receives, in delivery order."""

    label = "recording"

    def __init__(self, wants_accesses=False):
        super().__init__()
        self.wants_accesses = wants_accesses
        self.batches = []

    def handle_batch(self, events):
        self.batches.append(list(events))
        super().handle_batch(events)

    @property
    def events(self):
        return [e for batch in self.batches for e in batch]


def load(address, l1_misses=1):
    return AccessResult(address=address, size=8, is_write=False, cpu=0,
                        level="L2", latency=12, l1_misses=l1_misses,
                        l2_misses=0, l3_misses=0, tlb_misses=0,
                        home_node=0, remote=False)


def alloc(tid=0, addr=0x1000):
    return AllocEvent(tid=tid, addr=addr, end=addr + 64, size=64,
                      type_name="int[]", path=((1, 5),))


class TestPublishFlush:
    def test_publish_without_subscribers_drops(self):
        bus = EventBus()
        bus.publish(alloc())
        assert bus.pending_events == 0
        assert bus.events_published == 0

    def test_events_buffered_until_flush(self):
        bus = EventBus()
        c = Recording()
        bus.subscribe(c)
        bus.publish(alloc(addr=0x1000))
        bus.publish(alloc(addr=0x2000))
        assert bus.pending_events == 2
        assert c.batches == []
        assert bus.flush() == 2
        assert [e.addr for e in c.events] == [0x1000, 0x2000]
        assert bus.pending_events == 0

    def test_flush_empty_is_noop(self):
        bus = EventBus()
        bus.subscribe(Recording())
        assert bus.flush() == 0
        assert bus.batches_flushed == 0

    def test_full_ring_auto_flushes(self):
        bus = EventBus(capacity=4)
        c = Recording()
        bus.subscribe(c)
        for i in range(5):
            bus.publish(alloc(addr=0x1000 * (i + 1)))
        # The 4th publish hit capacity and flushed; the 5th is pending.
        assert len(c.batches) == 1
        assert len(c.batches[0]) == 4
        assert bus.pending_events == 1

    def test_ordering_preserved_across_kinds(self):
        bus = EventBus()
        c = Recording()
        bus.subscribe(c)
        bus.publish(alloc(addr=0x1000))
        bus.publish(GcMoveEvent(oid=1, src=0x1000, dst=0x2000, size=64))
        bus.publish(alloc(addr=0x3000))
        bus.flush()
        kinds = [type(e).__name__ for e in c.events]
        assert kinds == ["AllocEvent", "GcMoveEvent", "AllocEvent"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventBus(capacity=0)


class TestSubscription:
    def test_duplicate_subscribe_rejected(self):
        bus = EventBus()
        c = Recording()
        bus.subscribe(c)
        with pytest.raises(ValueError):
            bus.subscribe(c)

    def test_unsubscribe_unknown_rejected(self):
        with pytest.raises(ValueError):
            EventBus().unsubscribe(Recording())

    def test_late_subscriber_misses_earlier_events(self):
        # Attach-mode semantics: events published before subscribe are
        # flushed to the earlier subscribers only.
        bus = EventBus()
        first = Recording()
        bus.subscribe(first)
        bus.publish(alloc(addr=0x1000))
        late = Recording()
        bus.subscribe(late)
        bus.publish(alloc(addr=0x2000))
        bus.flush()
        assert [e.addr for e in first.events] == [0x1000, 0x2000]
        assert [e.addr for e in late.events] == [0x2000]

    def test_unsubscribe_delivers_pending_first(self):
        # Detach-mode semantics: a detaching collector still receives
        # everything published while it was subscribed.
        bus = EventBus()
        c = Recording()
        bus.subscribe(c)
        bus.publish(alloc(addr=0x1000))
        bus.unsubscribe(c)
        assert [e.addr for e in c.events] == [0x1000]
        assert c.bus is None
        assert not bus.active

    def test_active_flag_tracks_subscribers(self):
        bus = EventBus()
        assert not bus.active
        c = Recording()
        bus.subscribe(c)
        assert bus.active
        bus.unsubscribe(c)
        assert not bus.active


class TestSamplers:
    def test_sampler_open_event_published(self):
        bus = EventBus()
        c = Recording()
        bus.subscribe(c)
        sid = bus.open_sampler(L1_MISS, period=8, owner="me")
        bus.flush()
        opens = [e for e in c.events if isinstance(e, SamplerOpenEvent)]
        assert len(opens) == 1
        assert opens[0].sampler_id == sid
        assert opens[0].owner == "me"
        assert opens[0].period == 8

    def test_overflow_delivers_sample_with_path_snapshot(self):
        bus = EventBus()
        c = Recording()
        bus.subscribe(c)
        thread = FakeThread(tid=3)
        bus.thread_started(thread)
        sid = bus.open_sampler(ALL_LOADS, period=2, owner="me")
        for i in range(4):
            bus.observe_access(thread, load(0x1000 + 8 * i))
        bus.flush()
        samples = [e for e in c.events if isinstance(e, SampleEvent)]
        assert len(samples) == 2           # 4 loads / period 2
        assert all(s.sampler_id == sid for s in samples)
        assert all(s.tid == 3 for s in samples)
        assert samples[0].path == thread.stack

    def test_sampler_armed_on_thread_started_later(self):
        bus = EventBus()
        c = Recording()
        bus.subscribe(c)
        bus.open_sampler(ALL_LOADS, period=1, owner="me")
        thread = FakeThread(tid=7)
        bus.thread_started(thread)         # after open
        bus.observe_access(thread, load(0x2000))
        bus.flush()
        assert any(isinstance(e, SampleEvent) and e.tid == 7
                   for e in c.events)

    def test_close_sampler_stops_counting(self):
        bus = EventBus()
        c = Recording()
        bus.subscribe(c)
        thread = FakeThread(tid=1)
        bus.thread_started(thread)
        sid = bus.open_sampler(ALL_LOADS, period=1, owner="me")
        bus.observe_access(thread, load(0x1000))
        bus.close_sampler(sid)
        assert not bus.sampling
        bus.observe_access(thread, load(0x2000))
        bus.flush()
        samples = [e for e in c.events if isinstance(e, SampleEvent)]
        assert len(samples) == 1

    def test_close_samplers_by_owner(self):
        bus = EventBus()
        thread = FakeThread(tid=1)
        bus.thread_started(thread)
        bus.open_sampler(ALL_LOADS, period=1, owner="a")
        keep = bus.open_sampler(L1_MISS, period=1, owner="b")
        bus.close_samplers("a")
        assert set(bus._samplers) == {keep}
        assert bus.sampling

    def test_sampler_total_survives_thread_end(self):
        # Counting mode: a huge period, read the total afterwards —
        # even when the thread already finished (perf fd stays open).
        bus = EventBus()
        thread = FakeThread(tid=1)
        bus.thread_started(thread)
        sid = bus.open_sampler(ALL_LOADS, period=1 << 60, owner="pilot")
        for i in range(5):
            bus.observe_access(thread, load(0x1000 + 8 * i))
        bus.thread_ended(thread)
        assert bus.sampler_total(sid) == 5
        # ...but the disarmed counter no longer counts.
        bus.observe_access(thread, load(0x9000))
        assert bus.sampler_total(sid) == 5

    def test_thread_lifecycle_events_published(self):
        bus = EventBus()
        c = Recording()
        bus.subscribe(c)
        thread = FakeThread(tid=2, cpu=1, name="t2")
        bus.thread_started(thread)
        bus.thread_ended(thread)
        bus.flush()
        assert ThreadStartEvent(tid=2, cpu=1, name="t2") in c.events
        assert ThreadEndEvent(tid=2) in c.events


class TestAccessDelivery:
    def test_accesses_only_published_when_wanted(self):
        bus = EventBus()
        plain = Recording()
        bus.subscribe(plain)
        thread = FakeThread(tid=1)
        bus.thread_started(thread)
        bus.observe_access(thread, load(0x1000))
        bus.flush()
        assert not any(isinstance(e, AccessEvent) for e in plain.events)

        greedy = Recording(wants_accesses=True)
        bus.subscribe(greedy)
        bus.observe_access(thread, load(0x2000))
        bus.flush()
        accesses = [e for e in greedy.events if isinstance(e, AccessEvent)]
        assert len(accesses) == 1
        assert accesses[0].address == 0x2000
        # The non-greedy subscriber sees them too once someone asks —
        # delivery is shared; filtering is per-collector dispatch.
        assert any(isinstance(e, AccessEvent) for e in plain.events)

    def test_wants_accesses_refcounted_on_unsubscribe(self):
        bus = EventBus()
        greedy = Recording(wants_accesses=True)
        bus.subscribe(greedy)
        assert bus._accesses_wanted == 1
        bus.unsubscribe(greedy)
        assert bus._accesses_wanted == 0


class TestCollectorDispatch:
    def test_typed_dispatch_and_charging(self):
        class Counting(Collector):
            label = "counting"

            def __init__(self):
                super().__init__()
                self.allocs = 0

            def on_alloc(self, event):
                self.allocs += 1
                self.charge(event.thread, 10)

        bus = EventBus()
        c = Counting()
        bus.subscribe(c)
        thread = FakeThread(tid=0)
        thread.cycles = 0
        bus.publish(AllocEvent(tid=0, addr=0x1000, end=0x1040, size=64,
                               type_name="int[]", path=(), thread=thread))
        bus.publish(alloc(addr=0x2000))     # thread=None: still charged
        bus.flush()
        assert c.allocs == 2
        assert c.charged_cycles == 20
        assert thread.cycles == 10
