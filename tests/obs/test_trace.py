"""Tests for trace serialisation: encode/decode, method meta, gzip."""

import json

import pytest

from repro.core.javaagent import instrument_program
from repro.jvm import Machine
from repro.memsys.hierarchy import AccessResult
from repro.obs.events import (
    AccessEvent,
    AllocEvent,
    GcFinalizeEvent,
    GcMoveEvent,
    GcNotifyEvent,
    JitCompileEvent,
    SampleEvent,
    SamplerOpenEvent,
    ThreadEndEvent,
    ThreadStartEvent,
    decode_record,
)
from repro.obs.trace import TraceReader, TraceWriter
from repro.workloads import get_workload


ROUND_TRIP_EVENTS = [
    ThreadStartEvent(tid=1, cpu=2, name="worker"),
    ThreadEndEvent(tid=1),
    AllocEvent(tid=1, addr=0x1000, end=0x1040, size=64,
               type_name="int[]", path=((3, 5), (4, 9))),
    SampleEvent(sampler_id=2, event="MEM_LOAD_UOPS_RETIRED:L1_MISS",
                tid=1, cpu=2, address=0x1010, size=8, is_write=False,
                latency=44, level="L3", home_node=1, remote=True,
                path=((3, 6),)),
    GcMoveEvent(oid=7, src=0x1000, dst=0x2000, size=64),
    GcFinalizeEvent(oid=8, addr=0x3000, size=32, type_name="byte[]"),
    GcNotifyEvent(gc_id=1, reclaimed_objects=3, reclaimed_bytes=96,
                  moved_objects=1, moved_bytes=64, live_bytes=4096,
                  pause_cycles=1000),
    JitCompileEvent(method_id=3, qualified_name="C.m", version=2),
    SamplerOpenEvent(sampler_id=2, event="MEM_LOAD_UOPS_RETIRED:L1_MISS",
                     period=64, owner="djxperf"),
]


class TestRecordRoundTrip:
    @pytest.mark.parametrize("event", ROUND_TRIP_EVENTS,
                             ids=lambda e: type(e).__name__)
    def test_event_round_trips(self, event):
        rec = event.to_record()
        # JSON-serialisable all the way down.
        restored = decode_record(json.loads(json.dumps(rec)))
        assert restored == event
        assert type(restored) is type(event)

    def test_access_event_round_trips(self):
        result = AccessResult(address=0x2000, size=8, is_write=True, cpu=3,
                              level="DRAM", latency=200, l1_misses=1,
                              l2_misses=1, l3_misses=1, tlb_misses=1,
                              home_node=1, remote=True, lines=2)
        event = AccessEvent(tid=4, result=result)
        restored = decode_record(json.loads(json.dumps(event.to_record())))
        assert restored == event
        # The rebuilt AccessResult supports offline re-counting.
        assert restored.result.l1_misses == 1
        assert restored.result.lines == 2

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="zz"):
            decode_record(["zz", 1])


def record_objectlayout(path, include_accesses=False):
    workload = get_workload("objectlayout")
    program = instrument_program(workload.build_verified())
    machine = Machine(program, workload.machine_config())
    writer = TraceWriter(str(path), machine=machine,
                         include_accesses=include_accesses,
                         meta={"workload": "objectlayout"})
    writer.attach(machine)
    machine.run()
    writer.close()
    return writer


class TestWriterReader:
    def test_header_and_meta(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_objectlayout(path)
        reader = TraceReader(str(path))
        assert reader.header["format"] == "djx-obs-trace"
        assert reader.header["meta"]["workload"] == "objectlayout"
        assert not reader.includes_accesses

    def test_stream_round_trips_through_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = record_objectlayout(path)
        events = TraceReader(str(path)).read_all()
        assert len(events) == writer.events_written
        assert any(isinstance(e, AllocEvent) for e in events)
        assert any(isinstance(e, ThreadStartEvent) for e in events)

    def test_gzip_suffix_compresses(self, tmp_path):
        plain = tmp_path / "t.jsonl"
        gz = tmp_path / "t.jsonl.gz"
        record_objectlayout(plain, include_accesses=True)
        record_objectlayout(gz, include_accesses=True)
        assert gz.stat().st_size < plain.stat().st_size / 4
        # Same decoded content either way.
        assert TraceReader(str(gz)).read_all() \
            == TraceReader(str(plain)).read_all()

    def test_method_meta_resolves_frames(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_objectlayout(path)
        reader = TraceReader(str(path))
        events = reader.read_all()
        assert reader.methods          # populated during the read
        resolve = reader.frame_resolver()
        alloc = next(e for e in events
                     if isinstance(e, AllocEvent) and e.path)
        frame = resolve(alloc.path[-1])
        assert frame.class_name == "Objectlayout"
        assert frame.line > 0

    def test_unknown_method_resolves_placeholder(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_objectlayout(path)
        reader = TraceReader(str(path))
        reader.read_all()
        frame = reader.frame_resolver()((999999, 0))
        assert frame.class_name == "<unknown>"

    def test_accesses_only_recorded_when_asked(self, tmp_path):
        lean = tmp_path / "lean.jsonl"
        full = tmp_path / "full.jsonl"
        record_objectlayout(lean, include_accesses=False)
        record_objectlayout(full, include_accesses=True)
        lean_events = TraceReader(str(lean)).read_all()
        full_events = TraceReader(str(full)).read_all()
        assert not any(isinstance(e, AccessEvent) for e in lean_events)
        accesses = [e for e in full_events if isinstance(e, AccessEvent)]
        assert accesses
        # The non-access prefix of both traces is identical.
        assert [e for e in full_events
                if not isinstance(e, AccessEvent)] == lean_events

    def test_reader_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"hello": 1}\n')
        with pytest.raises(ValueError, match="not a djx-obs-trace"):
            TraceReader(str(path))

    def test_reader_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "v99.jsonl"
        path.write_text('{"format": "djx-obs-trace", "version": 99}\n')
        with pytest.raises(ValueError, match="version"):
            TraceReader(str(path))

    def test_reader_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            TraceReader(str(path))
