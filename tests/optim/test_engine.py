"""End-to-end tests for the profile-guided optimization engine."""

import pytest

from repro.optim.engine import (
    ACCEPTED,
    NO_CANDIDATE,
    REJECTED,
    OptimizationVerdict,
    optimize_workload,
)


@pytest.fixture(scope="module")
def accepted_verdict():
    """One full accepted loop, shared across assertions (it's slow)."""
    return optimize_workload("unsized-growth")


@pytest.fixture(scope="module")
def rejected_verdict():
    """A deliberately non-improving rewrite: presizing to 2 slots."""
    return optimize_workload("unsized-growth", capacity=2)


class TestAccepted:
    def test_status_and_transform(self, accepted_verdict):
        v = accepted_verdict
        assert v.status == ACCEPTED
        assert v.ok
        assert v.transform == "presize"
        assert not v.rolled_back

    def test_metric_dropped_at_site_and_total(self, accepted_verdict):
        v = accepted_verdict
        assert v.metric_total_after < v.metric_total_before
        assert v.site_metric_after < v.site_metric_before

    def test_measured_speedup(self, accepted_verdict):
        v = accepted_verdict
        assert v.optimized_cycles < v.baseline_cycles
        assert v.speedup is not None and v.speedup > 1.0

    def test_differential_safety_across_engines(self, accepted_verdict):
        v = accepted_verdict
        assert v.output_equal is True
        assert v.engines_checked == ("legacy", "compiled", "fused")

    def test_round_trips_through_dict(self, accepted_verdict):
        data = accepted_verdict.to_dict()
        back = OptimizationVerdict.from_dict(data)
        assert back == accepted_verdict
        assert data["speedup"] == pytest.approx(accepted_verdict.speedup)

    def test_render_mentions_verdict_and_engines(self, accepted_verdict):
        text = accepted_verdict.render()
        assert "ACCEPTED" in text
        assert "legacy" in text and "fused" in text


class TestRejectedRollback:
    def test_non_improving_rewrite_is_rejected(self, rejected_verdict):
        v = rejected_verdict
        assert v.status == REJECTED
        assert not v.ok
        assert v.rolled_back
        assert "no measured improvement" in v.reason

    def test_rejection_keeps_measurements(self, rejected_verdict):
        # The verdict still reports what was measured before rollback.
        v = rejected_verdict
        assert v.baseline_cycles > 0
        assert v.optimized_cycles > 0
        assert v.site_metric_after >= v.site_metric_before

    def test_render_mentions_rollback(self, rejected_verdict):
        assert "rolled back" in rejected_verdict.render()


class TestNoCandidate:
    def test_workload_without_matching_shape(self):
        # objectlayout's advice has no presize-able growth chain.
        verdict = optimize_workload("objectlayout", transform="presize")
        assert verdict.status == NO_CANDIDATE
        assert verdict.transform is None
        assert verdict.attempts == [] or all(
            a["outcome"] != "applied" for a in verdict.attempts)


class TestFamilyPlumbing:
    def test_redundancy_family_selects_dead_store_elimination(self):
        verdict = optimize_workload("redundant-fill", family="redundancy")
        assert verdict.status == ACCEPTED
        assert verdict.transform == "eliminate-dead-stores"
        assert verdict.event == "redundancy"

    def test_unsupported_combination_raises(self):
        with pytest.raises(ValueError,
                           match="not applicable to family 'redundancy'"):
            optimize_workload("redundant-fill", family="redundancy",
                              transform="presize")

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="no optimization transforms"):
            optimize_workload("unsized-growth", family="no-such")
