"""Tests for the optimizer's transform catalog."""

import pytest

from repro.jvm import Machine, Op
from repro.optim import advise
from repro.optim.transforms import (
    FAMILY_TRANSFORMS,
    KIND_TRANSFORMS,
    TRANSFORMS,
    transforms_for,
)
from repro.workloads import get_workload
from repro.workloads.runner import profile_program


def advised(name, family="djxperf", threshold=0):
    """Build, profile, and advise one workload; returns (program, advices)."""
    from repro.core import DjxConfig

    workload = get_workload(name)
    program = workload.build_verified("baseline")
    run = profile_program(program, workload.machine_config(),
                          config=DjxConfig(size_threshold=threshold),
                          family=family)
    return program, advise(run.analysis)


class TestRegistry:
    def test_catalog_names(self):
        assert set(TRANSFORMS) == {"hoist", "presize", "reorder-fields",
                                   "swap-boxed-array",
                                   "eliminate-dead-stores"}

    def test_every_family_maps_to_registered_transforms(self):
        for family, names in FAMILY_TRANSFORMS.items():
            for name in names:
                assert name in TRANSFORMS, (family, name)

    def test_every_kind_entry_is_registered(self):
        for kind, names in KIND_TRANSFORMS.items():
            for name in names:
                assert name in TRANSFORMS, (kind, name)
                assert kind in TRANSFORMS[name].advice_kinds

    def test_box_swap_precedes_hoist_for_hoist_advice(self):
        from repro.optim import AdviceKind

        names = KIND_TRANSFORMS[AdviceKind.HOIST_ALLOCATION]
        assert names.index("swap-boxed-array") < names.index("hoist")


class TestTransformsFor:
    def test_family_defaults(self):
        assert "presize" in transforms_for("djxperf")
        assert transforms_for("redundancy") == ("eliminate-dead-stores",)

    def test_pin_valid_transform(self):
        assert transforms_for("djxperf", "presize") == ("presize",)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="no optimization transforms"):
            transforms_for("no-such-family")

    def test_unknown_transform_rejected(self):
        with pytest.raises(ValueError, match="unknown transform"):
            transforms_for("djxperf", "frobnicate")

    def test_mismatched_combination_rejected(self):
        with pytest.raises(ValueError,
                           match="not applicable to family 'redundancy'"):
            transforms_for("redundancy", "presize")


def apply_first(name, program, advices, *, capacity=None):
    transform = TRANSFORMS[name]
    kwargs = {"capacity": capacity} if capacity is not None else {}
    for advice in advices:
        if advice.kind not in transform.advice_kinds:
            continue
        result = transform.apply(program, advice, **kwargs)
        if result is not None:
            return result
    return None


class TestPresize:
    def test_rewrites_initial_capacity(self):
        program, advices = advised("unsized-growth")
        result = apply_first("presize", program, advices)
        assert result is not None
        assert "2048" in result.detail
        # The original program is untouched; the rewrite is a copy.
        before = Machine(program.clone()).run()
        after = Machine(result.program.clone()).run()
        assert after.output == before.output
        assert after.heap_allocations < before.heap_allocations

    def test_explicit_capacity_override(self):
        program, advices = advised("unsized-growth")
        result = apply_first("presize", program, advices, capacity=256)
        assert result is not None
        assert "256" in result.detail


class TestReorderFields:
    def test_packs_hot_fields(self):
        program, advices = advised("padded-layout")
        result = apply_first("reorder-fields", program, advices)
        assert result is not None
        before = Machine(program.clone()).run()
        after = Machine(result.program.clone()).run()
        assert after.output == before.output


class TestSwapBoxedArray:
    def test_unboxes_counter_array(self):
        program, advices = advised("boxed-counters")
        result = apply_first("swap-boxed-array", program, advices)
        assert result is not None
        before = Machine(program.clone()).run()
        after = Machine(result.program.clone()).run()
        assert after.output == before.output
        # The boxes are gone: one backing array allocation remains.
        assert after.heap_allocations < before.heap_allocations
        ops = {ins.op for m in result.program.methods.values()
               for ins in m.code}
        assert Op.ANEWARRAY not in ops

    def test_declines_when_box_escapes_shape(self):
        # unsized-growth has no boxed-array idiom at all.
        program, advices = advised("unsized-growth")
        assert apply_first("swap-boxed-array", program, advices) is None


class TestEliminateDeadStores:
    def test_elides_overwritten_fill(self):
        program, advices = advised("redundant-fill", family="redundancy")
        result = apply_first("eliminate-dead-stores", program, advices)
        assert result is not None
        assert "overwritten before any read" in result.detail
        before = Machine(program.clone()).run()
        after = Machine(result.program.clone()).run()
        assert after.output == before.output
        assert after.stores < before.stores

    def test_declines_on_workload_without_dead_fill(self):
        program, advices = advised("redundant-fill", family="redundancy")
        # Point the transform at a workload whose advised sites don't
        # carry the dead-fill idiom.
        other, _ = advised("unsized-growth")
        assert apply_first("eliminate-dead-stores", other, advices) is None
