"""Tests for the allocation-hoisting pass."""

import pytest

from repro.heap.layout import Kind
from repro.jvm import JProgram, Machine, MethodBuilder, Op, verify
from repro.optim.hoist import (
    find_hoist_candidates,
    hoist_allocations,
    hoist_program,
)

from tests.jvm.helpers import counting_loop


def loop_alloc_method(touch=True):
    """for (i..10) { buf = new int[64]; buf[0] = i (optional) }"""
    b = MethodBuilder("C", "m", first_line=1)
    def body(b):
        b.iconst(64).newarray(Kind.INT).store(1)
        if touch:
            b.load(1).iconst(0).load(0).astore()
    counting_loop(b, 10, 0, body)
    b.ret()
    return b.build()


class TestCandidateDetection:
    def test_simple_loop_allocation_found(self):
        cands = find_hoist_candidates(loop_alloc_method())
        assert len(cands) == 1
        cand = cands[0]
        assert cand.local == 1

    def test_allocation_outside_loop_not_candidate(self):
        b = MethodBuilder("C", "m")
        b.iconst(64).newarray(Kind.INT).store(1)
        counting_loop(b, 10, 0, lambda b: b.load(1).iconst(0).aload().pop())
        b.ret()
        assert find_hoist_candidates(b.build()) == []

    def test_loop_varying_size_not_candidate(self):
        # new int[i] — the scala-stm grow() shape must not be hoisted.
        b = MethodBuilder("C", "m")
        def body(b):
            b.load(0).iconst(1).add().newarray(Kind.INT).store(1)
        counting_loop(b, 10, 0, body)
        b.ret()
        assert find_hoist_candidates(b.build()) == []

    def test_escaping_reference_not_candidate(self):
        # The reference is published to a static: reuse is observable.
        b = MethodBuilder("C", "m")
        def body(b):
            b.iconst(64).newarray(Kind.INT).store(1)
            b.load(1).putstatic("leak")
        counting_loop(b, 10, 0, body)
        b.ret()
        assert find_hoist_candidates(b.build()) == []

    def test_reference_passed_to_call_not_candidate(self):
        b = MethodBuilder("C", "m")
        def body(b):
            b.iconst(64).newarray(Kind.INT).store(1)
            b.load(1).invoke("use", 1).pop()
        counting_loop(b, 10, 0, body)
        b.ret()
        assert find_hoist_candidates(b.build()) == []

    def test_local_redefined_elsewhere_not_candidate(self):
        b = MethodBuilder("C", "m")
        def body(b):
            b.iconst(64).newarray(Kind.INT).store(1)
            b.iconst(32).newarray(Kind.INT).store(1)   # second def
            b.load(1).iconst(0).aload().pop()
        counting_loop(b, 10, 0, body)
        b.ret()
        assert find_hoist_candidates(b.build()) == []

    def test_new_instance_candidate(self):
        b = MethodBuilder("C", "m")
        def body(b):
            b.new("Point").store(1)
            b.load(1).iconst(7).putfield("x")
        counting_loop(b, 10, 0, body)
        b.ret()
        cands = find_hoist_candidates(b.build())
        assert len(cands) == 1


class TestTransform:
    def test_allocation_moved_before_loop(self):
        method, n = hoist_allocations(loop_alloc_method())
        assert n == 1
        ops = [i.op for i in method.code]
        alloc_at = ops.index(Op.NEWARRAY)
        # No branch before the allocation → it's outside the loop.
        assert all(op not in (Op.GOTO,) and not op.value.startswith("if")
                   for op in ops[:alloc_at])
        verify(method.code, method.num_args)

    def test_allocation_count_drops_at_runtime(self):
        p = JProgram()
        p.add_method(loop_alloc_method())
        p.add_entry("m")
        baseline = Machine(p).run()
        assert baseline.heap_allocations == 10

        p2, n = hoist_program(p)
        assert n == 1
        hoisted = Machine(p2).run()
        assert hoisted.heap_allocations == 1

    def test_behaviour_preserved_for_dead_values(self):
        # Sum written through the buffer must match after hoisting.
        p = JProgram()
        b = MethodBuilder("C", "m")
        b.iconst(0).store(2)
        def body(b):
            b.iconst(8).newarray(Kind.INT).store(1)
            b.load(1).iconst(0).load(0).astore()       # buf[0] = i
            b.load(2).load(1).iconst(0).aload().add().store(2)
        counting_loop(b, 10, 0, body)
        b.load(2).native("print", 1, False)
        b.ret()
        p.add_builder(b)
        p.add_entry("m")
        baseline = Machine(p).run()
        p2, n = hoist_program(p)
        assert n == 1
        hoisted = Machine(p2).run()
        assert hoisted.output == baseline.output == ["45"]

    def test_hoisted_code_is_faster(self):
        def program(hoist):
            p = JProgram()
            b = MethodBuilder("C", "m")
            def body(b):
                b.iconst(4096).newarray(Kind.INT).store(1)
                b.load(1).iconst(0).load(0).astore()
            counting_loop(b, 50, 0, body)
            b.ret()
            p.add_builder(b)
            p.add_entry("m")
            if hoist:
                p, n = hoist_program(p)
                assert n == 1
            return Machine(p).run()

        assert program(True).wall_cycles < program(False).wall_cycles

    def test_no_candidates_returns_same_method(self):
        b = MethodBuilder("C", "m")
        b.iconst(1).pop().ret()
        method = b.build()
        out, n = hoist_allocations(method)
        assert n == 0
        assert out is method

    def test_nested_loop_allocation_hoisted_out_of_both(self):
        p = JProgram()
        b = MethodBuilder("C", "m")
        def inner_body(b):
            b.iconst(16).newarray(Kind.INT).store(2)
            b.load(2).iconst(0).iconst(1).astore()
        def outer_body(b):
            counting_loop(b, 5, 1, inner_body)
        counting_loop(b, 5, 0, outer_body)
        b.ret()
        p.add_builder(b)
        p.add_entry("m")
        p2, n = hoist_program(p)
        result = Machine(p2).run()
        # Fully hoisted out of both loops → a single allocation.
        assert result.heap_allocations == 1

    def test_program_hoist_filters_by_method_name(self):
        p = JProgram()
        p.add_method(loop_alloc_method())
        p.add_entry("m")
        p2, n = hoist_program(p, method_names=["other"])
        assert n == 0


def branchy_hoistable_method(name, iters=8, cutoff=4, bump=100, size=16,
                             print_result=True):
    """A loop allocation with a branch landing *inside* the sequence
    that hoisting moves: ``if (i < cutoff) goto alloc`` targets the
    allocation's first instruction, skipping the accumulator bump."""
    b = MethodBuilder("C", name, first_line=1)
    b.iconst(0).store(2)                       # acc = 0
    b.iconst(0).store(0)                       # i = 0
    top, end = b.new_label("top"), b.new_label("end")
    b.place(top)
    b.load(0).iconst(iters).if_icmpge(end)
    alloc = b.new_label("alloc")
    b.load(0).iconst(cutoff).if_icmplt(alloc)
    b.load(2).iconst(bump).add().store(2)      # acc += bump
    b.place(alloc)
    b.iconst(size).newarray(Kind.INT).store(1)
    b.load(1).iconst(0).load(0).astore()       # buf[0] = i
    b.load(2).load(1).iconst(0).aload().add().store(2)
    b.iinc(0, 1)
    b.goto(top)
    b.place(end)
    if print_result:
        b.load(2).native("print", 1, False)
    b.ret()
    return b


class TestBranchIntoHoistedRegion:
    """A branch whose target sits inside the moved allocation sequence.

    The hoist removes [start_bci, store_bci] from the loop body and
    remaps branches into that span to the next surviving instruction.
    A bad remap here either fails verification (caught by the
    round-trip assert after every rewrite) or silently reroutes
    control flow — which the output comparison catches.
    """

    def test_hoist_preserves_output_and_verifies(self):
        p = JProgram()
        p.add_builder(branchy_hoistable_method("m"))
        p.add_entry("m")
        baseline = Machine(p.clone()).run()
        # 0+1+..+7 = 28, plus 100 for each of i in 4..7.
        assert baseline.output == ["428"]
        p2, n = hoist_program(p)
        assert n == 1
        for method in p2.methods.values():
            verify(method.code, method.num_args)
        hoisted = Machine(p2).run()
        assert hoisted.output == baseline.output


class TestFuzzGeneratorSweep:
    """Hoisting must be output-preserving on arbitrary generated
    programs, not just curated shapes — every rewrite is verifier-
    checked as it lands, and the surviving program must print exactly
    what the original did.  The generator never emits a non-escaping
    loop allocation itself (its allocations feed the blackhole sink by
    design), so each program gets a hoistable branch-into-region
    method grafted in as a silent side thread; the graft prints
    nothing, so output equality isolates the generated program's own
    behaviour under the rewrite."""

    def test_hoist_is_output_preserving_over_seeds(self):
        from repro.fuzz.generator import (
            FuzzKnobs,
            build_program,
            generate_spec,
        )

        knobs = FuzzKnobs(allow_multithread=False)
        hoists = 0
        for seed in range(8):
            program = build_program(generate_spec(seed, knobs))
            graft = branchy_hoistable_method(
                "hoistme", iters=4 + seed % 5, cutoff=1 + seed % 3,
                size=8 + 8 * (seed % 4), print_result=False)
            program.add_builder(graft)
            program.add_entry("hoistme")
            baseline = Machine(program.clone()).run()
            hoisted_program, n = hoist_program(program)
            hoists += n
            result = Machine(hoisted_program).run()
            assert result.output == baseline.output, f"seed {seed}"
        # The sweep must actually exercise the transform.
        assert hoists >= 8
