"""Tests for the allocation-hoisting pass."""

import pytest

from repro.heap.layout import Kind
from repro.jvm import JProgram, Machine, MethodBuilder, Op, verify
from repro.optim.hoist import (
    find_hoist_candidates,
    hoist_allocations,
    hoist_program,
)

from tests.jvm.helpers import counting_loop


def loop_alloc_method(touch=True):
    """for (i..10) { buf = new int[64]; buf[0] = i (optional) }"""
    b = MethodBuilder("C", "m", first_line=1)
    def body(b):
        b.iconst(64).newarray(Kind.INT).store(1)
        if touch:
            b.load(1).iconst(0).load(0).astore()
    counting_loop(b, 10, 0, body)
    b.ret()
    return b.build()


class TestCandidateDetection:
    def test_simple_loop_allocation_found(self):
        cands = find_hoist_candidates(loop_alloc_method())
        assert len(cands) == 1
        cand = cands[0]
        assert cand.local == 1

    def test_allocation_outside_loop_not_candidate(self):
        b = MethodBuilder("C", "m")
        b.iconst(64).newarray(Kind.INT).store(1)
        counting_loop(b, 10, 0, lambda b: b.load(1).iconst(0).aload().pop())
        b.ret()
        assert find_hoist_candidates(b.build()) == []

    def test_loop_varying_size_not_candidate(self):
        # new int[i] — the scala-stm grow() shape must not be hoisted.
        b = MethodBuilder("C", "m")
        def body(b):
            b.load(0).iconst(1).add().newarray(Kind.INT).store(1)
        counting_loop(b, 10, 0, body)
        b.ret()
        assert find_hoist_candidates(b.build()) == []

    def test_escaping_reference_not_candidate(self):
        # The reference is published to a static: reuse is observable.
        b = MethodBuilder("C", "m")
        def body(b):
            b.iconst(64).newarray(Kind.INT).store(1)
            b.load(1).putstatic("leak")
        counting_loop(b, 10, 0, body)
        b.ret()
        assert find_hoist_candidates(b.build()) == []

    def test_reference_passed_to_call_not_candidate(self):
        b = MethodBuilder("C", "m")
        def body(b):
            b.iconst(64).newarray(Kind.INT).store(1)
            b.load(1).invoke("use", 1).pop()
        counting_loop(b, 10, 0, body)
        b.ret()
        assert find_hoist_candidates(b.build()) == []

    def test_local_redefined_elsewhere_not_candidate(self):
        b = MethodBuilder("C", "m")
        def body(b):
            b.iconst(64).newarray(Kind.INT).store(1)
            b.iconst(32).newarray(Kind.INT).store(1)   # second def
            b.load(1).iconst(0).aload().pop()
        counting_loop(b, 10, 0, body)
        b.ret()
        assert find_hoist_candidates(b.build()) == []

    def test_new_instance_candidate(self):
        b = MethodBuilder("C", "m")
        def body(b):
            b.new("Point").store(1)
            b.load(1).iconst(7).putfield("x")
        counting_loop(b, 10, 0, body)
        b.ret()
        cands = find_hoist_candidates(b.build())
        assert len(cands) == 1


class TestTransform:
    def test_allocation_moved_before_loop(self):
        method, n = hoist_allocations(loop_alloc_method())
        assert n == 1
        ops = [i.op for i in method.code]
        alloc_at = ops.index(Op.NEWARRAY)
        # No branch before the allocation → it's outside the loop.
        assert all(op not in (Op.GOTO,) and not op.value.startswith("if")
                   for op in ops[:alloc_at])
        verify(method.code, method.num_args)

    def test_allocation_count_drops_at_runtime(self):
        p = JProgram()
        p.add_method(loop_alloc_method())
        p.add_entry("m")
        baseline = Machine(p).run()
        assert baseline.heap_allocations == 10

        p2, n = hoist_program(p)
        assert n == 1
        hoisted = Machine(p2).run()
        assert hoisted.heap_allocations == 1

    def test_behaviour_preserved_for_dead_values(self):
        # Sum written through the buffer must match after hoisting.
        p = JProgram()
        b = MethodBuilder("C", "m")
        b.iconst(0).store(2)
        def body(b):
            b.iconst(8).newarray(Kind.INT).store(1)
            b.load(1).iconst(0).load(0).astore()       # buf[0] = i
            b.load(2).load(1).iconst(0).aload().add().store(2)
        counting_loop(b, 10, 0, body)
        b.load(2).native("print", 1, False)
        b.ret()
        p.add_builder(b)
        p.add_entry("m")
        baseline = Machine(p).run()
        p2, n = hoist_program(p)
        assert n == 1
        hoisted = Machine(p2).run()
        assert hoisted.output == baseline.output == ["45"]

    def test_hoisted_code_is_faster(self):
        def program(hoist):
            p = JProgram()
            b = MethodBuilder("C", "m")
            def body(b):
                b.iconst(4096).newarray(Kind.INT).store(1)
                b.load(1).iconst(0).load(0).astore()
            counting_loop(b, 50, 0, body)
            b.ret()
            p.add_builder(b)
            p.add_entry("m")
            if hoist:
                p, n = hoist_program(p)
                assert n == 1
            return Machine(p).run()

        assert program(True).wall_cycles < program(False).wall_cycles

    def test_no_candidates_returns_same_method(self):
        b = MethodBuilder("C", "m")
        b.iconst(1).pop().ret()
        method = b.build()
        out, n = hoist_allocations(method)
        assert n == 0
        assert out is method

    def test_nested_loop_allocation_hoisted_out_of_both(self):
        p = JProgram()
        b = MethodBuilder("C", "m")
        def inner_body(b):
            b.iconst(16).newarray(Kind.INT).store(2)
            b.load(2).iconst(0).iconst(1).astore()
        def outer_body(b):
            counting_loop(b, 5, 1, inner_body)
        counting_loop(b, 5, 0, outer_body)
        b.ret()
        p.add_builder(b)
        p.add_entry("m")
        p2, n = hoist_program(p)
        result = Machine(p2).run()
        # Fully hoisted out of both loops → a single allocation.
        assert result.heap_allocations == 1

    def test_program_hoist_filters_by_method_name(self):
        p = JProgram()
        p.add_method(loop_alloc_method())
        p.add_entry("m")
        p2, n = hoist_program(p, method_names=["other"])
        assert n == 0
