"""Tests for the profile-to-advice triage rules."""

import pytest

from repro.core import DjxConfig
from repro.optim import AdviceKind, AdviceThresholds, advise
from repro.workloads import get_workload, run_profiled


def analysis_of(name, **cfg):
    run = run_profiled(get_workload(name),
                       config=DjxConfig(sample_period=32, **cfg))
    return run.analysis


class TestAdviceKinds:
    def test_bloat_triggers_hoist_advice(self):
        analysis = analysis_of("objectlayout")
        advices = advise(analysis)
        assert advices
        top = advices[0]
        assert top.kind is AdviceKind.HOIST_ALLOCATION
        assert top.site.leaf.line == 292

    def test_numa_triggers_placement_advice(self):
        analysis = analysis_of("eclipse-collections")
        advices = advise(analysis)
        numa = [a for a in advices if a.kind is AdviceKind.NUMA_PLACEMENT]
        assert numa
        assert numa[0].site.leaf.line == 758

    def test_strided_kernel_triggers_access_pattern_advice(self):
        analysis = analysis_of("scimark-fft")
        advices = advise(analysis)
        assert advices
        assert advices[0].kind is AdviceKind.IMPROVE_ACCESS_PATTERN
        assert advices[0].site.leaf.line == 166

    def test_growth_chain_triggers_capacity_advice(self):
        analysis = analysis_of("scala-stm-bench7")
        advices = advise(analysis)
        kinds = {a.site.leaf.line: a.kind for a in advices}
        # grow() allocations: several per run, large bytes → capacity.
        assert 619 in kinds
        assert kinds[619] in (AdviceKind.GROW_INITIAL_CAPACITY,
                              AdviceKind.HOIST_ALLOCATION)

    def test_insignificant_objects_get_no_advice(self):
        analysis = analysis_of("insig-lusearch", size_threshold=0)
        advices = advise(analysis)
        lines = {a.site.leaf.line for a in advices}
        assert 98 not in lines   # the cold site is below min_share


class TestThresholds:
    def test_min_share_filters(self):
        analysis = analysis_of("objectlayout")
        none = advise(analysis, AdviceThresholds(min_share=1.01))
        assert none == []

    def test_advice_is_ranked_by_share(self):
        analysis = analysis_of("objectlayout")
        advices = advise(analysis, top=10)
        shares = [a.metric_share for a in advices]
        assert shares == sorted(shares, reverse=True)

    def test_str_rendering(self):
        analysis = analysis_of("objectlayout")
        text = str(advise(analysis)[0])
        assert "hoist-allocation" in text
        assert "Objectlayout.run:292" in text


class TestFamilyTriage:
    """Non-DJXPerf analyses get family-specific advice — replica and
    redundancy profiles must surface their own metrics, not fall
    through to (or be dropped by) the miss-based triage."""

    def family_analysis(self, name, family):
        from repro.workloads.runner import profile_program

        workload = get_workload(name)
        run = profile_program(workload.build_verified("baseline"),
                              workload.machine_config(), family=family)
        return run.analysis

    def test_replica_profile_advises_deduplication(self):
        analysis = self.family_analysis("objectlayout", family="replica")
        advices = advise(analysis)
        assert advices
        top = advices[0]
        assert top.kind is AdviceKind.DEDUPLICATE_REPLICAS
        assert "duplicated bytes" in top.rationale

    def test_redundancy_profile_advises_dead_store_elimination(self):
        analysis = self.family_analysis("redundant-fill",
                                        family="redundancy")
        advices = advise(analysis)
        assert advices
        kinds = {a.kind for a in advices}
        assert AdviceKind.ELIMINATE_DEAD_STORES in kinds
        dead = next(a for a in advices
                    if a.kind is AdviceKind.ELIMINATE_DEAD_STORES)
        assert "/1000" in dead.rationale

    def test_family_advice_not_misrouted_to_miss_triage(self):
        analysis = self.family_analysis("redundant-fill",
                                        family="redundancy")
        kinds = {a.kind for a in advise(analysis)}
        assert AdviceKind.HOIST_ALLOCATION not in kinds
        assert AdviceKind.GROW_INITIAL_CAPACITY not in kinds
