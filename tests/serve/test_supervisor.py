"""Tests for the multi-process fleet supervisor.

The backoff/circuit-breaker/staleness logic is driven with injected
clocks and throwaway child commands (no fleet processes); the
end-to-end classes boot real supervised fleets over real sockets and
are therefore the slowest tests in the serve suite — they keep the
job counts tiny.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve.http import http_request
from repro.serve.queue import JobSpec, SpoolQueue
from repro.serve.service import ProfilingService
from repro.serve.supervisor import (
    ChildProcess,
    FleetSupervisor,
    front_door_path,
    read_front_door_file,
    write_front_door_file,
)

WORKLOAD = "objectlayout"


class TestFrontDoorFile:
    def test_round_trip(self, tmp_path):
        root = str(tmp_path)
        write_front_door_file(root, "127.0.0.1", 8123)
        info = read_front_door_file(root)
        assert info["host"] == "127.0.0.1"
        assert info["port"] == 8123
        assert info["pid"] == os.getpid()

    def test_missing_returns_none(self, tmp_path):
        assert read_front_door_file(str(tmp_path)) is None

    def test_garbage_returns_none(self, tmp_path):
        with open(front_door_path(str(tmp_path)), "w") as fh:
            fh.write("not json")
        assert read_front_door_file(str(tmp_path)) is None


def crashing_supervisor(tmp_path, **kw):
    """A supervisor whose single child is a fast-exiting command."""
    kw.setdefault("backoff_base", 0.5)
    kw.setdefault("max_restarts", 3)
    kw.setdefault("restart_window", 60.0)
    sup = FleetSupervisor(str(tmp_path), shards=0, **kw)
    child = ChildProcess(
        "crashy", [sys.executable, "-c", "raise SystemExit(3)"],
        os.path.join(sup.log_dir, "crashy.log"))
    sup.children["crashy"] = child
    return sup, child


def wait_exit(child, timeout=10.0):
    deadline = time.time() + timeout
    while child.alive():
        assert time.time() < deadline, "child did not exit"
        time.sleep(0.01)


class TestBackoff:
    """Restart scheduling with an injected clock — no sleeping."""

    def test_exit_schedules_exponential_backoff(self, tmp_path):
        sup, child = crashing_supervisor(tmp_path, backoff_base=0.5,
                                         backoff_max=30.0)
        restart_ats = []
        now = 100.0
        for expected_backoff in (0.5, 1.0, 2.0):
            sup._spawn(child)
            wait_exit(child)
            events = sup.poll_once(now=now)
            assert [e["event"] for e in events] == ["exited"]
            assert events[0]["returncode"] == 3
            assert child.state == "backoff"
            assert child.restart_at == pytest.approx(
                now + expected_backoff)
            restart_ats.append(child.restart_at)
            # Before the deadline nothing happens; at it, respawn.
            assert sup.poll_once(now=child.restart_at - 0.01) == []
            assert child.state == "backoff"
            events = sup.poll_once(now=child.restart_at)
            assert [e["event"] for e in events] == ["restarted"]
            wait_exit(child)
            child.proc.poll()
            # Advance the clock past this crash for the next round.
            now = restart_ats[-1] + 1.0
        assert child.restarts == 3

    def test_backoff_capped(self, tmp_path):
        sup, child = crashing_supervisor(tmp_path, backoff_base=4.0,
                                         backoff_max=6.0,
                                         max_restarts=100)
        child.restart_times = [100.0]  # one prior restart in window
        sup._spawn(child)
        wait_exit(child)
        events = sup.poll_once(now=101.0)
        # Second restart would be 4.0 * 2 = 8.0, capped at 6.0.
        assert events[0]["restart_at"] == pytest.approx(101.0 + 6.0)

    def test_circuit_breaker_gives_up(self, tmp_path):
        sup, child = crashing_supervisor(tmp_path, max_restarts=2,
                                         restart_window=60.0,
                                         backoff_base=0.25)
        now = 100.0
        for _ in range(2):
            sup._spawn(child)
            wait_exit(child)
            sup.poll_once(now=now)
            assert child.state == "backoff"
            now = child.restart_at
            sup.poll_once(now=now)  # respawn
        sup._spawn(child) if not child.alive() else None
        wait_exit(child)
        events = sup.poll_once(now=now + 0.1)
        assert child.state == "giveup"
        assert events[0]["state"] == "giveup"
        # A parked child is left alone forever after.
        assert sup.poll_once(now=now + 1000.0) == []

    def test_old_restarts_age_out_of_the_window(self, tmp_path):
        sup, child = crashing_supervisor(tmp_path, max_restarts=2,
                                         restart_window=10.0)
        child.restart_times = [100.0, 101.0]  # would trip at t=105
        sup._spawn(child)
        wait_exit(child)
        sup.poll_once(now=200.0)  # both aged out: backoff, not giveup
        assert child.state == "backoff"

    def test_exits_during_shutdown_are_not_restarted(self, tmp_path):
        sup, child = crashing_supervisor(tmp_path)
        sup._spawn(child)
        wait_exit(child)
        sup.request_stop()
        assert sup.poll_once(now=100.0) == []
        assert child.state == "stopped"


class TestStaleKill:
    def test_hung_worker_with_stale_heartbeat_is_killed(self, tmp_path):
        sup = FleetSupervisor(str(tmp_path), shards=0, stale_after=30.0)
        heartbeat = str(tmp_path / "status.jsonl")
        with open(heartbeat, "w") as fh:
            fh.write(json.dumps({"ts": 100.0, "state": "idle"}) + "\n")
        child = ChildProcess(
            "hung", [sys.executable, "-c",
                     "import time; time.sleep(600)"],
            os.path.join(sup.log_dir, "hung.log"),
            heartbeat_path=heartbeat)
        sup.children["hung"] = child
        sup._spawn(child)
        try:
            # Heartbeat 31s old: one over the threshold.
            events = sup.poll_once(now=131.0)
            assert [e["event"] for e in events] == ["stale-killed"]
            assert events[0]["age"] == pytest.approx(31.0)
            assert child.state == "backoff"
            assert not child.alive()
        finally:
            child.state = "giveup"  # never respawn
            if child.alive():
                child.proc.kill()
                child.proc.wait()

    def test_fresh_heartbeat_not_killed(self, tmp_path):
        sup = FleetSupervisor(str(tmp_path), shards=0, stale_after=30.0)
        heartbeat = str(tmp_path / "status.jsonl")
        with open(heartbeat, "w") as fh:
            fh.write(json.dumps({"ts": 125.0, "state": "idle"}) + "\n")
        child = ChildProcess(
            "busy", [sys.executable, "-c",
                     "import time; time.sleep(600)"],
            os.path.join(sup.log_dir, "busy.log"),
            heartbeat_path=heartbeat)
        sup.children["busy"] = child
        sup._spawn(child)
        try:
            assert sup.poll_once(now=131.0) == []
            assert child.alive()
        finally:
            child.proc.kill()
            child.proc.wait()


def submit_jobs(host, port, payloads):
    async def go():
        out = []
        for payload in payloads:
            status, data, _h = await http_request(
                host, port, "POST", "/submit", payload)
            assert status == 202, data
            out.append(data["job_id"])
        return out
    return asyncio.run(go())


def await_verdicts(host, port, job_ids, timeout=60.0):
    async def go():
        deadline = time.time() + timeout
        verdicts = {}
        for job_id in job_ids:
            while True:
                assert time.time() < deadline, \
                    f"timed out waiting on {job_id}"
                status, data, _h = await http_request(
                    host, port, "GET", f"/status/{job_id}")
                if status == 200 and data["state"] in ("done",
                                                       "failed"):
                    verdicts[job_id] = data
                    break
                await asyncio.sleep(0.05)
        return verdicts
    return asyncio.run(go())


class TestEndToEndRestart:
    def test_killed_worker_restarts_without_losing_or_duplicating_jobs(
            self, tmp_path):
        """SIGKILL the only shard worker mid-run; the supervisor must
        restart it, the restarted worker's ``recover()`` must reclaim
        the orphaned claim, and every job must end with exactly one
        outcome file."""
        root = str(tmp_path / "fleet")
        sup = FleetSupervisor(root, shards=1, port=0, poll=0.05,
                              backoff_base=0.1, stale_after=None)
        sup.start()
        try:
            info = sup.front_address(timeout=30.0)
            assert info is not None
            host, port = str(info["host"]), int(info["port"])
            job_ids = submit_jobs(host, port, [
                {"workload": WORKLOAD, "period": 32, "seed": 7000 + i}
                for i in range(4)])
            worker = sup.children["shard-00"]
            first_pid = worker.pid
            os.kill(first_pid, signal.SIGKILL)
            # Supervise until the worker is running again.
            deadline = time.time() + 30.0
            while worker.pid in (None, first_pid):
                assert time.time() < deadline, "no restart"
                sup.poll_once()
                time.sleep(0.05)
            assert worker.restarts == 1
            verdicts = await_verdicts(host, port, job_ids)
            assert all(v["state"] == "done"
                       for v in verdicts.values())
            # Exactly one outcome file per job — the kill neither lost
            # a job nor let two workers answer the same claim.
            done_dir = os.path.join(root, "shard-00", "spool", "done")
            assert sorted(n[:-len(".json")]
                          for n in os.listdir(done_dir)) == \
                sorted(job_ids)
        finally:
            sup.shutdown(grace=30.0)
        assert all(c.state == "stopped"
                   for c in sup.children.values())


class TestEndToEndDrain:
    def test_sigterm_drains_and_jobs_stay_done(self, tmp_path):
        """A SIGTERMed worker finishes its queue (graceful drain) and
        a later ``recover()`` over the same spool resurrects nothing."""
        root = str(tmp_path / "fleet")
        spool = os.path.join(root, "shard-00", "spool")
        queue = SpoolQueue(spool)
        job_ids = [queue.submit(JobSpec(
            job_id="", kind="profile", workload=WORKLOAD, period=32,
            seed=8000 + i)).job_id for i in range(3)]

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = (f"{src}{os.pathsep}" +
                             env.get("PYTHONPATH", "")).rstrip(
                                 os.pathsep)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "fleet", "--root", root,
             "--shards", "1", "--shard", "0", "--poll", "0.05"],
            env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT)
        try:
            # Let it claim work, then ask for a graceful stop.
            deadline = time.time() + 30.0
            while queue.counts()["pending"] == 3:
                assert time.time() < deadline, "worker never started"
                time.sleep(0.02)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out.decode()
        counts = queue.counts()
        assert counts == {"pending": 0, "running": 0, "done": 3,
                          "failed": 0}
        # recover() over the drained spool must not resurrect jobs.
        service = ProfilingService(spool,
                                   os.path.join(root, "post.sqlite"))
        with service:
            assert service.queue.counts()["pending"] == 0
            assert service.queue.counts()["done"] == 3
            for job_id in job_ids:
                assert service.queue.outcome(job_id)["result"][
                    "total_samples"] > 0
