"""Tests for the asyncio HTTP front door.

Each test runs its own event loop via ``asyncio.run``; fleet daemons
are never started — jobs that must finish are executed by calling the
owning shard's service directly inside the coroutine, which keeps the
tests deterministic and fast.
"""

import asyncio

import pytest

from repro.serve.http import HttpFrontDoor, http_request
from repro.serve.queue import FairnessPolicy
from repro.serve.router import Fleet

WORKLOAD = "objectlayout"


def drive(tmp_path, coro_fn, policy=None, shards=2):
    """Run ``coro_fn(fleet, door)`` against a started front door."""
    async def runner():
        with Fleet(str(tmp_path / "fleet"), shards=shards,
                   queue_policy=policy) as fleet:
            door = HttpFrontDoor(fleet)
            await door.start()
            try:
                return await coro_fn(fleet, door)
            finally:
                await door.stop()
    return asyncio.run(runner())


def submit_payload(**kw):
    payload = {"workload": WORKLOAD, "period": 32}
    payload.update(kw)
    return payload


class TestSubmit:
    def test_accepted_with_job_id_and_shard(self, tmp_path):
        async def scenario(fleet, door):
            status, data, _h = await http_request(
                door.host, door.port, "POST", "/submit",
                submit_payload(seed=1))
            assert status == 202
            assert data["job_id"]
            assert data["shard"] in (0, 1)
            assert data["tenant"] == "default"
            assert fleet.services[data["shard"]].queue.pending_count() \
                == 1
        drive(tmp_path, scenario)

    def test_unknown_workload_is_400(self, tmp_path):
        async def scenario(fleet, door):
            status, data, _h = await http_request(
                door.host, door.port, "POST", "/submit",
                submit_payload(workload="no-such"))
            assert status == 400
            assert "no-such" in data["error"]
        drive(tmp_path, scenario)

    def test_unknown_field_is_400(self, tmp_path):
        async def scenario(fleet, door):
            status, data, _h = await http_request(
                door.host, door.port, "POST", "/submit",
                submit_payload(frobnicate=1))
            assert status == 400
            assert "frobnicate" in data["error"]
        drive(tmp_path, scenario)

    def test_malformed_json_is_400(self, tmp_path):
        async def scenario(fleet, door):
            reader, writer = await asyncio.open_connection(
                door.host, door.port)
            body = b"{not json"
            writer.write(
                (f"POST /submit HTTP/1.1\r\nHost: x\r\n"
                 f"Content-Length: {len(body)}\r\n"
                 f"Connection: close\r\n\r\n").encode() + body)
            await writer.drain()
            status_line = (await reader.readline()).decode()
            writer.close()
            assert " 400 " in status_line
        drive(tmp_path, scenario)

    def test_get_submit_is_405(self, tmp_path):
        async def scenario(fleet, door):
            status, _d, _h = await http_request(
                door.host, door.port, "GET", "/submit")
            assert status == 405
        drive(tmp_path, scenario)

    def test_quota_exceeded_is_429_with_retry_after(self, tmp_path):
        policy = FairnessPolicy(max_pending_per_tenant=1,
                                retry_after=0.5)

        async def scenario(fleet, door):
            status, _d, _h = await http_request(
                door.host, door.port, "POST", "/submit",
                submit_payload(tenant="t", seed=1))
            assert status == 202
            status, data, headers = await http_request(
                door.host, door.port, "POST", "/submit",
                submit_payload(tenant="t", seed=2))
            assert status == 429
            assert headers["retry-after"] == "0.5"
            assert "quota" in data["error"]
        drive(tmp_path, scenario, policy=policy)


class TestStatusAndViews:
    def test_status_tracks_lifecycle_to_done(self, tmp_path):
        async def scenario(fleet, door):
            _s, accepted, _h = await http_request(
                door.host, door.port, "POST", "/submit",
                submit_payload(seed=9))
            status, data, _h = await http_request(
                door.host, door.port, "GET",
                f"/status/{accepted['job_id']}")
            assert (status, data["state"]) == (200, "pending")
            fleet.services[accepted["shard"]].drain()
            status, data, _h = await http_request(
                door.host, door.port, "GET",
                f"/status/{accepted['job_id']}")
            assert (status, data["state"]) == (200, "done")
            assert data["job"]["result"]["total_samples"] > 0
        drive(tmp_path, scenario)

    def test_unknown_job_is_404(self, tmp_path):
        async def scenario(fleet, door):
            status, _d, _h = await http_request(
                door.host, door.port, "GET", "/status/nope")
            assert status == 404
        drive(tmp_path, scenario)

    def test_history_and_fleet_views(self, tmp_path):
        async def scenario(fleet, door):
            _s, accepted, _h = await http_request(
                door.host, door.port, "POST", "/submit",
                submit_payload(seed=9))
            fleet.services[accepted["shard"]].drain()
            status, data, _h = await http_request(
                door.host, door.port, "GET",
                f"/history?workload={WORKLOAD}&limit=5")
            assert status == 200
            assert len(data["records"]) == 1
            assert data["records"][0]["shard"] == accepted["shard"]
            status, stats, _h = await http_request(
                door.host, door.port, "GET", "/fleet")
            assert status == 200
            assert stats["shard_count"] == 2
            assert sum(s["completed"]
                       for s in stats["shards"]) == 1
        drive(tmp_path, scenario)

    def test_unknown_route_is_404(self, tmp_path):
        async def scenario(fleet, door):
            status, _d, _h = await http_request(
                door.host, door.port, "GET", "/nope")
            assert status == 404
        drive(tmp_path, scenario)

    def test_bad_limit_is_400(self, tmp_path):
        async def scenario(fleet, door):
            status, _d, _h = await http_request(
                door.host, door.port, "GET", "/history?limit=banana")
            assert status == 400
        drive(tmp_path, scenario)
