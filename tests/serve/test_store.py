"""Tests for the persistent content-addressed profile store."""

import pytest

from repro.core import DjxConfig
from repro.core.analyzer import analyze_profiles
from repro.core.diff import diff_profiles
from repro.core.profile import ResolvedFrame, ThreadProfile
from repro.serve.store import (
    ProfileKey,
    ProfileStore,
    config_digest,
    profile_key_for,
    program_digest,
)
from repro.workloads import get_workload, run_profiled

EVENT = "MEM_LOAD_UOPS_RETIRED:L1_MISS"


def resolver(frame):
    method_id, bci = frame
    return ResolvedFrame("C", f"m{method_id}", "C.java", bci)


def analysis(site_samples):
    """site_samples: {(method_id, bci): (allocs, samples)}."""
    profile = ThreadProfile(0)
    for frame, (allocs, samples) in site_samples.items():
        stats = profile.site((frame,))
        for _ in range(allocs):
            stats.record_allocation("int[]", 128)
        for _ in range(samples):
            profile.record_total(EVENT)
            stats.record_sample(EVENT, (), remote=False)
    return analyze_profiles([profile], resolver, EVENT)


def key(variant="baseline", seed=None):
    return ProfileKey(workload="w", variant=variant, program_hash="p" * 8,
                      config_hash="c" * 8, seed=seed)


@pytest.fixture
def store(tmp_path):
    with ProfileStore(str(tmp_path / "store.sqlite")) as s:
        yield s


class TestDigests:
    def test_program_digest_stable_across_builds(self):
        w = get_workload("objectlayout")
        assert (program_digest(w.build_verified())
                == program_digest(w.build_verified()))

    def test_program_digest_separates_variants(self):
        w = get_workload("objectlayout")
        assert (program_digest(w.build_verified("baseline"))
                != program_digest(w.build_verified("hoisted")))

    def test_config_digest_sees_period(self):
        assert (config_digest(DjxConfig(sample_period=32))
                != config_digest(DjxConfig(sample_period=64)))
        assert (config_digest(DjxConfig(sample_period=32))
                == config_digest(DjxConfig(sample_period=32)))

    def test_profile_key_for(self):
        w = get_workload("objectlayout")
        k = profile_key_for(w, "baseline", DjxConfig(sample_period=32))
        assert k.workload == "objectlayout"
        assert k.variant == "baseline"
        assert len(k.program_hash) == 64
        assert len(k.config_hash) == 64


class TestRoundTrip:
    def test_store_load_is_byte_identical(self, store):
        before = analysis({(1, 5): (10, 8), (2, 7): (1, 2)})
        record = store.put_profile(key(), before, wall_cycles=123)
        loaded = store.load_analysis(record)
        assert loaded.to_dict() == before.to_dict()
        assert loaded.total() == before.total()

    def test_store_load_diff_round_trip(self, store):
        """The acceptance path: serialize -> store -> load -> diff."""
        before = analysis({(1, 5): (10, 8), (2, 7): (1, 2)})
        after = analysis({(1, 5): (1, 1), (2, 7): (1, 9)})
        r1 = store.put_profile(key(), before)
        r2 = store.put_profile(key("hoisted"), after)
        diff = diff_profiles(store.load_analysis(r1),
                             store.load_analysis(r2))
        by_loc = {d.location: d for d in diff.deltas}
        assert by_loc["C.m1:5"].share_delta < 0
        assert by_loc["C.m2:7"].share_delta > 0

    def test_real_workload_round_trip(self, store):
        w = get_workload("objectlayout")
        config = DjxConfig(sample_period=32)
        run = run_profiled(w, "baseline", config)
        k = profile_key_for(w, "baseline", config)
        record = store.put_profile(k, run.analysis,
                                   wall_cycles=run.result.wall_cycles)
        loaded = store.load_analysis(record)
        assert loaded.to_dict() == run.analysis.to_dict()
        assert (loaded.top_sites(1)[0].location
                == run.analysis.top_sites(1)[0].location)

    def test_get_profile_returns_both(self, store):
        record = store.put_profile(key(), analysis({(1, 5): (2, 3)}))
        got_record, got_analysis = store.get_profile(record.record_id)
        assert got_record.payload_hash == record.payload_hash
        assert got_analysis.total() == 3

    def test_missing_record_raises(self, store):
        with pytest.raises(KeyError):
            store.get_record(999)


class TestDeduplication:
    def test_identical_payloads_stored_once(self, store):
        a = analysis({(1, 5): (10, 8)})
        r1 = store.put_profile(key(), a)
        r2 = store.put_profile(key(), a)
        assert not r1.deduplicated
        assert r2.deduplicated
        assert r1.payload_hash == r2.payload_hash
        stats = store.stats()
        assert stats["profiles"] == 2
        assert stats["payloads"] == 1

    def test_different_payloads_stored_separately(self, store):
        store.put_profile(key(), analysis({(1, 5): (10, 8)}))
        store.put_profile(key(), analysis({(1, 5): (10, 9)}))
        assert store.stats()["payloads"] == 2

    def test_compression_shrinks_payload(self, store):
        store.put_profile(key(), analysis({(i, 5): (3, 4)
                                           for i in range(40)}))
        stats = store.stats()
        assert 0 < stats["stored_bytes"] < stats["raw_bytes"]


class TestLookup:
    def test_find_latest_exact_key(self, store):
        store.put_profile(key(), analysis({(1, 5): (1, 1)}),
                          created_at=100.0)
        newest = store.put_profile(key(), analysis({(1, 5): (2, 2)}),
                                   created_at=200.0)
        found = store.find_latest(key())
        assert found.record_id == newest.record_id

    def test_find_latest_misses_other_keys(self, store):
        store.put_profile(key("baseline"), analysis({(1, 5): (1, 1)}))
        assert store.find_latest(key("hoisted")) is None
        assert store.find_latest(key("baseline", seed=7)) is None

    def test_seeded_keys_are_distinct(self, store):
        seeded = store.put_profile(key(seed=7), analysis({(1, 5): (1, 1)}))
        assert store.find_latest(key(seed=7)).record_id == seeded.record_id
        assert store.find_latest(key()) is None

    def test_history_newest_first(self, store):
        for t in (100.0, 300.0, 200.0):
            store.put_profile(key(), analysis({(1, int(t)): (1, 1)}),
                              created_at=t)
        times = [r.created_at for r in store.history()]
        assert times == [300.0, 200.0, 100.0]

    def test_history_filters(self, store):
        store.put_profile(key("baseline"), analysis({(1, 5): (1, 1)}))
        store.put_profile(key("hoisted"), analysis({(1, 5): (1, 1)}))
        assert len(store.history(variant="hoisted")) == 1
        assert len(store.history(workload="other")) == 0

    def test_baseline_for_prefers_latest_earlier(self, store):
        first = store.put_profile(key(), analysis({(1, 5): (1, 1)}),
                                  created_at=100.0)
        second = store.put_profile(key(), analysis({(1, 5): (2, 2)}),
                                   created_at=200.0)
        third = store.put_profile(key(), analysis({(1, 5): (3, 3)}),
                                  created_at=300.0)
        assert store.baseline_for(third).record_id == second.record_id
        assert store.baseline_for(second).record_id == first.record_id
        assert store.baseline_for(first) is None


class TestPointersAndBench:
    def test_trace_path_and_meta_round_trip(self, store):
        record = store.put_profile(key(), analysis({(1, 5): (1, 1)}),
                                   trace_path="/tmp/run.trace",
                                   meta={"job_id": "j-1"})
        got = store.get_record(record.record_id)
        assert got.trace_path == "/tmp/run.trace"
        assert got.meta == {"job_id": "j-1"}

    def test_bench_rows_round_trip(self, store):
        store.put_bench("montecarlo", {"ips": 1000.0}, created_at=100.0)
        store.put_bench("montecarlo", {"ips": 1100.0}, created_at=200.0)
        store.put_bench("sunflow", {"ips": 900.0}, created_at=150.0)
        rows = store.bench_history("montecarlo")
        assert [r["payload"]["ips"] for r in rows] == [1100.0, 1000.0]
        assert store.stats()["bench_rows"] == 3

    def test_reopen_persists(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with ProfileStore(path) as store:
            record = store.put_profile(key(), analysis({(1, 5): (1, 1)}))
        with ProfileStore(path) as store:
            assert store.load_analysis(
                store.get_record(record.record_id)).total() == 1

    def test_version_mismatch_rejected(self, tmp_path):
        import sqlite3
        path = str(tmp_path / "store.sqlite")
        ProfileStore(path).close()
        db = sqlite3.connect(path)
        db.execute("PRAGMA user_version = 99")
        db.commit()
        db.close()
        with pytest.raises(ValueError, match="version"):
            ProfileStore(path)


class TestConcurrency:
    def test_wal_journal_mode(self, store):
        assert store.journal_mode == "wal"

    def test_busy_timeout_applied(self, tmp_path):
        with ProfileStore(str(tmp_path / "s.sqlite"),
                          busy_timeout=2.5) as store:
            timeout = store._db.execute(
                "PRAGMA busy_timeout").fetchone()[0]
            assert timeout == 2500

    def test_reader_sees_committed_rows_during_writer(self, tmp_path):
        """WAL lets a second connection read while the first writes —
        the fleet's front-door reads alongside a shard daemon."""
        path = str(tmp_path / "store.sqlite")
        with ProfileStore(path) as writer, ProfileStore(path) as reader:
            writer.put_profile(key(seed=1), analysis({(1, 5): (1, 1)}))
            assert len(reader.history()) == 1
            writer.put_profile(key(seed=2), analysis({(2, 6): (1, 2)}))
            records = reader.history()
            assert len(records) == 2
            assert reader.load_analysis(records[0]).total() == 2
