"""End-to-end tests for the continuous-profiling daemon."""

import json
import os

import pytest

from repro.serve.queue import JobSpec, SpoolQueue
from repro.serve.service import ProfilingService, execute_job

WORKLOAD = "objectlayout"


@pytest.fixture
def spool(tmp_path):
    return str(tmp_path / "spool")


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "store.sqlite")


def submit(spool, workload=WORKLOAD, **kw):
    queue = SpoolQueue(spool)
    kw.setdefault("period", 32)
    return queue.submit(JobSpec(job_id="", kind="profile",
                                workload=workload, **kw))


class TestExecuteJob:
    """The worker entry point, run in-process for determinism."""

    def test_profile_job(self):
        spec = JobSpec(job_id="j", kind="profile", workload=WORKLOAD,
                       period=32)
        result = execute_job(spec.to_dict())
        assert result["kind"] == "profile"
        assert result["total_samples"] > 0
        assert result["wall_cycles"] > 0
        assert result["analysis"]["schema"] == "repro-analysis/1"

    def test_unknown_workload_raises(self):
        spec = JobSpec(job_id="j", kind="profile", workload="no-such")
        with pytest.raises(KeyError):
            execute_job(spec.to_dict())


class TestDaemon:
    def test_submit_drain_history_round_trip(self, spool, store_path):
        first = submit(spool)
        second = submit(spool, workload="montecarlo")
        with ProfilingService(spool, store_path, jobs=1) as service:
            done = service.drain()
            assert done == 2
            records = service.store.history()
            workloads = {r.key.workload for r in records}
            assert workloads == {WORKLOAD, "montecarlo"}
            # Job outcomes are visible to the submitters.
            for submitted in (first, second):
                outcome = service.queue.outcome(submitted.job_id)
                assert outcome["result"]["cached"] is False
                assert outcome["result"]["total_samples"] > 0

    def test_exact_key_repeat_served_from_store(self, spool, store_path):
        submit(spool)
        with ProfilingService(spool, store_path, jobs=1) as service:
            service.drain()
            assert service.cached_hits == 0
            repeat = submit(spool)
            service.drain()
            assert service.cached_hits == 1
            outcome = service.queue.outcome(repeat.job_id)
            assert outcome["result"]["cached"] is True
            # Cache hit: index row count unchanged, no new payload.
            assert service.store.stats()["profiles"] == 1

    def test_force_resimulates(self, spool, store_path):
        submit(spool)
        with ProfilingService(spool, store_path, jobs=1) as service:
            service.drain()
            submit(spool, force=True)
            service.drain()
            assert service.cached_hits == 0
            stats = service.store.stats()
            assert stats["profiles"] == 2
            # Deterministic rerun produced an identical payload.
            assert stats["payloads"] == 1

    def test_different_config_not_cached(self, spool, store_path):
        submit(spool, period=32)
        submit(spool, period=64)
        with ProfilingService(spool, store_path, jobs=1) as service:
            service.drain()
            assert service.cached_hits == 0
            assert service.store.stats()["profiles"] == 2

    def test_bad_job_fails_after_max_attempts(self, spool, store_path):
        bad = submit(spool, workload="no-such-workload", max_attempts=2)
        with ProfilingService(spool, store_path, jobs=1) as service:
            service.drain()
            assert service.failed == 1
            outcome = service.queue.outcome(bad.job_id)
            assert "no-such-workload" in outcome["error"]
            counts = service.queue.counts()
            assert counts["failed"] == 1
            assert counts["pending"] == 0

    def test_heartbeat_written(self, spool, store_path):
        submit(spool)
        with ProfilingService(spool, store_path, jobs=1) as service:
            service.drain()
            path = service.heartbeat_path
        assert os.path.exists(path)
        lines = [json.loads(line)
                 for line in open(path) if line.strip()]
        states = [line["state"] for line in lines]
        assert "working" in states
        assert states[-1] == "idle"
        assert lines[-1]["completed"] == 1
        assert lines[-1]["queue"]["done"] == 1

    def test_recovers_crashed_daemon_claims(self, spool, store_path):
        submitted = submit(spool)
        queue = SpoolQueue(spool)
        queue.claim()  # crashed daemon took it and died
        with ProfilingService(spool, store_path, jobs=1) as service:
            assert service.queue.counts()["pending"] == 1
            service.drain()
            outcome = service.queue.outcome(submitted.job_id)
            assert outcome["result"]["total_samples"] > 0

    def test_serve_forever_bounded_polls(self, spool, store_path):
        submit(spool)
        with ProfilingService(spool, store_path, jobs=1) as service:
            service.serve_forever(poll_interval=0.01, max_polls=3)
            assert service.completed == 1
        lines = [json.loads(line)
                 for line in open(service.heartbeat_path) if line.strip()]
        assert lines[0]["state"] == "started"
        assert lines[-1]["state"] == "stopped"

    def test_request_stop_drains_queue(self, spool, store_path):
        submit(spool)
        with ProfilingService(spool, store_path, jobs=1) as service:
            service.request_stop()
            service.serve_forever(poll_interval=0.01)
            # Stop was requested before the loop: still drains the job.
            assert service.completed == 1


class TestIdleBackoff:
    def test_next_idle_delay_doubles_and_caps(self):
        next_delay = ProfilingService.next_idle_delay
        assert next_delay(0.01, 0.01, 0.32) == pytest.approx(0.02)
        assert next_delay(0.02, 0.01, 0.32) == pytest.approx(0.04)
        assert next_delay(0.30, 0.01, 0.32) == pytest.approx(0.32)
        assert next_delay(0.32, 0.01, 0.32) == pytest.approx(0.32)
        # A reset delay below base restarts the ramp from base.
        assert next_delay(0.0, 0.01, 0.32) == pytest.approx(0.02)

    def test_idle_polls_back_off_exponentially(self, spool, store_path,
                                               monkeypatch):
        from repro.serve import service as service_mod

        sleeps = []
        monkeypatch.setattr(service_mod.time, "sleep", sleeps.append)
        with ProfilingService(spool, store_path, jobs=1) as service:
            service.serve_forever(poll_interval=0.01, max_polls=4,
                                  jitter=0.0)
        assert sleeps == pytest.approx([0.01, 0.02, 0.04, 0.08])

    def test_claimed_job_resets_backoff(self, spool, store_path,
                                        monkeypatch):
        from repro.serve import service as service_mod

        sleeps = []
        monkeypatch.setattr(service_mod.time, "sleep", sleeps.append)
        submit(spool)
        with ProfilingService(spool, store_path, jobs=1) as service:
            service.serve_forever(poll_interval=0.01, max_polls=3,
                                  jitter=0.0)
            assert service.completed == 1
        # Poll 1 claimed the job (no sleep); the following idle polls
        # ramp from the base interval again.
        assert sleeps == pytest.approx([0.01, 0.02])

    def test_backoff_cap_respected(self, spool, store_path, monkeypatch):
        from repro.serve import service as service_mod

        sleeps = []
        monkeypatch.setattr(service_mod.time, "sleep", sleeps.append)
        with ProfilingService(spool, store_path, jobs=1) as service:
            service.serve_forever(poll_interval=0.01, max_polls=6,
                                  max_backoff=0.04, jitter=0.0)
        assert sleeps == pytest.approx([0.01, 0.02, 0.04, 0.04, 0.04,
                                        0.04])


class TestFleetDedupe:
    def test_identical_submission_served_from_other_shard(self, tmp_path):
        """Service-level cross-shard dedupe: shard B answers from shard
        A's store through the fleet index, zero simulator work."""
        from repro.serve.router import FleetIndex

        index = FleetIndex(str(tmp_path / "fleet-index.sqlite"))
        a = ProfilingService(str(tmp_path / "a-spool"),
                             str(tmp_path / "a-store.sqlite"), jobs=1,
                             fleet_index=index, shard_id=0)
        b = ProfilingService(str(tmp_path / "b-spool"),
                             str(tmp_path / "b-store.sqlite"), jobs=1,
                             fleet_index=index, shard_id=1)
        try:
            submit(str(tmp_path / "a-spool"), seed=11)
            a.drain()
            assert index.count() == 1

            repeat = submit(str(tmp_path / "b-spool"), seed=11)
            b.drain()
            assert b.fleet_hits == 1
            assert b.pool.stats["tasks"] == 0  # nothing simulated
            outcome = b.queue.outcome(repeat.job_id)
            assert outcome["result"]["fleet"] is True
            assert outcome["result"]["origin_shard"] == 0
            assert b.store.stats()["profiles"] == 0

            # A different seed is a miss: shard B simulates it.
            submit(str(tmp_path / "b-spool"), seed=12)
            b.drain()
            assert b.fleet_misses == 1
            assert b.pool.stats["tasks"] == 1
        finally:
            a.close()
            b.close()
            index.close()


class TestWarmCompileCache:
    def test_repeat_traffic_hits_the_warm_cache(self, spool,
                                                store_path):
        """Two jobs, same workload, different seeds: the first
        compiles (misses), the second reuses the per-process fused
        artifacts (hits, zero misses)."""
        from repro.jvm.dispatch import reset_warm_cache

        reset_warm_cache()
        first = submit(spool, seed=11)
        second = submit(spool, seed=22)
        with ProfilingService(spool, store_path, jobs=1) as service:
            service.drain()
            assert service.warm_misses > 0
            assert service.warm_hits > 0
            cold = service.queue.outcome(first.job_id)["result"]["warm"]
            warm = service.queue.outcome(second.job_id)["result"]["warm"]
            assert cold["misses"] > 0
            assert warm["misses"] == 0
            assert warm["hits"] == cold["misses"]
            # The totals reach the heartbeat for fleet observability.
            service._heartbeat("probe")
            with open(service.heartbeat_path) as fh:
                last = json.loads(fh.readlines()[-1])
            assert last["warm"] == {"hits": service.warm_hits,
                                    "misses": service.warm_misses}

    def test_cached_repeat_adds_no_warm_traffic(self, spool,
                                                store_path):
        from repro.jvm.dispatch import reset_warm_cache

        reset_warm_cache()
        submit(spool, seed=33)
        with ProfilingService(spool, store_path, jobs=1) as service:
            service.drain()
            hits_before = service.warm_hits
            submit(spool, seed=33)  # exact key: served from store
            service.drain()
            assert service.warm_hits == hits_before


class TestHeartbeatRotation:
    def test_size_capped_roll_to_dot_one(self, spool, store_path):
        with ProfilingService(spool, store_path, jobs=1,
                              heartbeat_max_bytes=600) as service:
            for _ in range(12):
                service._heartbeat("tick")
            rolled = service.heartbeat_path + ".1"
            assert os.path.exists(rolled)
            # The roll happens before an append, so the live file is
            # bounded by the cap plus one heartbeat line.
            assert os.path.getsize(service.heartbeat_path) < 2 * 600
            # Every surviving line is still valid JSONL.
            for path in (service.heartbeat_path, rolled):
                with open(path) as fh:
                    for line in fh:
                        assert json.loads(line)["state"]

    def test_roll_keeps_one_generation(self, spool, store_path):
        with ProfilingService(spool, store_path, jobs=1,
                              heartbeat_max_bytes=400) as service:
            for _ in range(40):
                service._heartbeat("tick")
            siblings = [n for n in os.listdir(spool)
                        if n.startswith("status.jsonl")]
            assert sorted(siblings) == ["status.jsonl",
                                        "status.jsonl.1"]


class TestRetentionSweep:
    def test_startup_sweep_removes_aged_outcomes(self, spool,
                                                 store_path):
        done = submit(spool)
        with ProfilingService(spool, store_path, jobs=1) as service:
            service.drain()
            path = service.queue._path("done", done.job_id)
            data = service.queue._read(path)
            data["finished_at"] = data["finished_at"] - 7200.0
            service.queue._write(path, data)
        with ProfilingService(spool, store_path, jobs=1,
                              retention=3600.0) as service:
            assert service.swept == 1
            assert service.queue.outcome(done.job_id) is None

    def test_idle_poll_sweeps_and_heartbeats(self, spool, store_path,
                                             monkeypatch):
        monkeypatch.setattr("time.sleep", lambda *_: None)
        done = submit(spool)
        with ProfilingService(spool, store_path, jobs=1,
                              retention=3600.0) as service:
            service.drain()
            path = service.queue._path("done", done.job_id)
            data = service.queue._read(path)
            data["finished_at"] = data["finished_at"] - 7200.0
            service.queue._write(path, data)
            service.serve_forever(poll_interval=0.01, max_polls=3)
            assert service.swept == 1
            with open(service.heartbeat_path) as fh:
                states = [json.loads(line)["state"] for line in fh]
            # Idle polls heartbeat (supervisor liveness), alongside
            # the lifecycle markers (the initial drain() already
            # heartbeat "working" before serve_forever "started").
            assert "started" in states
            assert states[-1] == "stopped"
            assert "idle" in states
