"""Tests for cross-run regression detection."""

import pytest

from repro.core import DjxConfig
from repro.core.analyzer import analyze_profiles
from repro.core.profile import ResolvedFrame, ThreadProfile
from repro.serve.regress import (
    CLEAN,
    NO_BASELINE,
    REGRESSION,
    RegressPolicy,
    regress_analyses,
    regress_records,
)
from repro.serve.store import ProfileKey, ProfileStore
from repro.workloads import get_workload, run_profiled

EVENT = "MEM_LOAD_UOPS_RETIRED:L1_MISS"


def resolver(frame):
    method_id, bci = frame
    return ResolvedFrame("C", f"m{method_id}", "C.java", bci)


def analysis(site_samples):
    """site_samples: {(method_id, bci): samples}."""
    profile = ThreadProfile(0)
    for frame, samples in site_samples.items():
        stats = profile.site((frame,))
        stats.record_allocation("int[]", 128)
        for _ in range(samples):
            profile.record_total(EVENT)
            stats.record_sample(EVENT, (), remote=False)
    return analyze_profiles([profile], resolver, EVENT)


def key():
    return ProfileKey(workload="w", variant="baseline",
                      program_hash="p" * 8, config_hash="c" * 8)


class TestPolicy:
    def test_defaults_valid(self):
        policy = RegressPolicy()
        assert policy.top_n == 5
        assert policy.share_swing == pytest.approx(0.05)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            RegressPolicy(top_n=0)
        with pytest.raises(ValueError):
            RegressPolicy(share_swing=0.0)
        with pytest.raises(ValueError):
            RegressPolicy(throughput_drop=-0.1)


class TestAnalysesVerdicts:
    def test_identical_profiles_clean(self):
        a = analysis({(1, 5): 10, (2, 7): 5})
        verdict = regress_analyses(a, analysis({(1, 5): 10, (2, 7): 5}))
        assert verdict.status == CLEAN
        assert verdict.ok
        assert verdict.findings == []

    def test_new_top_site_names_location(self):
        before = analysis({(1, 5): 10})
        after = analysis({(1, 5): 10, (9, 42): 30})
        verdict = regress_analyses(before, after)
        assert verdict.status == REGRESSION
        kinds = {f.kind: f for f in verdict.findings}
        assert kinds["new-top-site"].location == "C.m9:42"
        assert kinds["new-top-site"].after > 0.5

    def test_share_swing_flagged(self):
        before = analysis({(1, 5): 10, (2, 7): 10})
        after = analysis({(1, 5): 4, (2, 7): 16})
        verdict = regress_analyses(before, after)
        swings = [f for f in verdict.findings if f.kind == "share-swing"]
        assert [f.location for f in swings] == ["C.m2:7"]
        improved = [f.location for f in verdict.improvements]
        assert improved == ["C.m1:5"]

    def test_new_top_site_not_double_reported_as_swing(self):
        before = analysis({(1, 5): 10})
        after = analysis({(1, 5): 10, (9, 42): 30})
        verdict = regress_analyses(before, after)
        swing_locs = [f.location for f in verdict.findings
                      if f.kind == "share-swing"]
        assert "C.m9:42" not in swing_locs

    def test_small_swing_below_threshold_clean(self):
        before = analysis({(1, 5): 100, (2, 7): 100})
        after = analysis({(1, 5): 98, (2, 7): 102})
        verdict = regress_analyses(before, after,
                                   policy=RegressPolicy(share_swing=0.05))
        assert verdict.status == CLEAN

    def test_throughput_drop_flagged(self):
        a = analysis({(1, 5): 10})
        verdict = regress_analyses(a, analysis({(1, 5): 10}),
                                   baseline_cycles=1000,
                                   candidate_cycles=1300)
        drops = [f for f in verdict.findings
                 if f.kind == "throughput-drop"]
        assert len(drops) == 1
        assert "+30.0%" in drops[0].detail

    def test_throughput_within_threshold_clean(self):
        a = analysis({(1, 5): 10})
        verdict = regress_analyses(a, analysis({(1, 5): 10}),
                                   baseline_cycles=1000,
                                   candidate_cycles=1050)
        assert verdict.status == CLEAN

    def test_to_dict_machine_readable(self):
        before = analysis({(1, 5): 10})
        after = analysis({(1, 5): 10, (9, 42): 30})
        data = regress_analyses(before, after, workload="w",
                                variant="baseline").to_dict()
        assert data["status"] == "regression"
        assert data["findings"][0]["kind"] == "new-top-site"
        assert data["findings"][0]["location"] == "C.m9:42"

    def test_render_mentions_site(self):
        before = analysis({(1, 5): 10})
        after = analysis({(1, 5): 10, (9, 42): 30})
        text = regress_analyses(before, after).render()
        assert "REGRESSION" in text
        assert "C.m9:42" in text


class TestStoreBackedVerdicts:
    def test_no_baseline(self, tmp_path):
        with ProfileStore(str(tmp_path / "s.sqlite")) as store:
            record = store.put_profile(key(), analysis({(1, 5): 10}))
            verdict = regress_records(store, record)
        assert verdict.status == NO_BASELINE
        assert not verdict.ok
        assert verdict.candidate_id == record.record_id

    def test_repeat_run_clean(self, tmp_path):
        with ProfileStore(str(tmp_path / "s.sqlite")) as store:
            a = analysis({(1, 5): 10})
            store.put_profile(key(), a, wall_cycles=1000,
                              created_at=100.0)
            candidate = store.put_profile(key(), a, wall_cycles=1000,
                                          created_at=200.0)
            verdict = regress_records(store, candidate)
        assert verdict.status == CLEAN
        assert verdict.baseline_id is not None

    def test_degraded_variant_names_offending_site(self, tmp_path):
        """Acceptance check: a hoist-disabled run against the hoisted
        baseline yields a verdict naming the offending allocation site."""
        workload = get_workload("batik-makeroom")
        config = DjxConfig(sample_period=32)
        good = run_profiled(workload, "hoisted", config)
        bad = run_profiled(workload, "baseline", config)
        with ProfileStore(str(tmp_path / "s.sqlite")) as store:
            baseline = store.put_profile(
                key(), good.analysis,
                wall_cycles=good.result.wall_cycles, created_at=100.0)
            candidate = store.put_profile(
                key(), bad.analysis,
                wall_cycles=bad.result.wall_cycles, created_at=200.0)
            verdict = regress_records(store, candidate, baseline=baseline)
        assert verdict.status == REGRESSION
        locations = [f.location for f in verdict.findings]
        assert any("makeRoom" in loc for loc in locations)


class TestImprovementDirection:
    """Direction gating: the optimizer accepts on improvements and
    rolls back on findings, so a swing reported in the wrong list
    silently flips verdicts."""

    def test_improved_site_lands_in_improvements_not_findings(self):
        before = analysis({(1, 5): 16, (2, 7): 4})
        after = analysis({(1, 5): 4, (2, 7): 16})
        verdict = regress_analyses(before, after)
        improved = {f.location for f in verdict.improvements}
        assert "C.m1:5" in improved
        assert all(f.location != "C.m1:5" for f in verdict.findings
                   if f.kind == "share-swing")
        # Improvements never regress the status on their own.
        assert all(f.kind != "throughput-drop" for f in verdict.findings)

    def test_improvement_direction_is_signed(self):
        before = analysis({(1, 5): 16, (2, 7): 4})
        after = analysis({(1, 5): 4, (2, 7): 16})
        verdict = regress_analyses(before, after)
        for f in verdict.improvements:
            assert f.after < f.before
        for f in verdict.findings:
            if f.kind == "share-swing":
                assert f.after > f.before

    def test_unchanged_profile_reports_neither(self):
        a = analysis({(1, 5): 10, (2, 7): 10})
        verdict = regress_analyses(a, analysis({(1, 5): 10, (2, 7): 10}))
        assert verdict.status == CLEAN
        assert verdict.findings == []
        assert verdict.improvements == []

    def test_worsened_profile_is_regression_despite_dilution(self):
        # Shares are zero-sum: a big new site *dilutes* the old one,
        # so the old site shows up as an "improvement" even though
        # nothing got better.  The status must still be REGRESSION —
        # and this artifact is exactly why the optimizer's acceptance
        # rule uses absolute metric drops, not share swings.
        before = analysis({(1, 5): 10})
        after = analysis({(1, 5): 10, (9, 42): 30})
        verdict = regress_analyses(before, after)
        assert verdict.status == REGRESSION
        assert not verdict.ok
        assert any(f.kind == "new-top-site" for f in verdict.findings)

    def test_throughput_drop_triggers_optimizer_rollback(self):
        """The engine's reject path keys off this exact finding kind."""
        a = analysis({(1, 5): 10})
        verdict = regress_analyses(a, analysis({(1, 5): 10}),
                                   baseline_cycles=1000,
                                   candidate_cycles=1300)
        drops = [f for f in verdict.findings
                 if f.kind == "throughput-drop"]
        assert drops and verdict.status == REGRESSION
        # Faster-than-baseline must NOT be flagged as a drop: the
        # optimizer treats any throughput-drop finding as fatal.
        faster = regress_analyses(a, analysis({(1, 5): 10}),
                                  baseline_cycles=1300,
                                  candidate_cycles=1000)
        assert all(f.kind != "throughput-drop" for f in faster.findings)

    def test_improvements_serialised_for_verdict_payloads(self):
        before = analysis({(1, 5): 16, (2, 7): 4})
        after = analysis({(1, 5): 4, (2, 7): 16})
        data = regress_analyses(before, after).to_dict()
        assert data["improvements"]
        assert data["improvements"][0]["location"] == "C.m1:5"
