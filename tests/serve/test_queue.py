"""Tests for the spool-directory job queue."""

import json
import os
import threading

import pytest

from repro.serve.queue import (
    FairnessPolicy,
    JobSpec,
    QuotaExceeded,
    SpoolQueue,
)


@pytest.fixture
def queue(tmp_path):
    return SpoolQueue(str(tmp_path / "spool"))


def spec(workload="montecarlo", **kw):
    return JobSpec(job_id="", kind="profile", workload=workload, **kw)


class TestJobSpec:
    def test_round_trip(self):
        original = spec(period=32, seed=7, timeout=10.0,
                        meta={"trace_path": "/tmp/t"})
        original.job_id = "j-1"
        restored = JobSpec.from_dict(original.to_dict())
        assert restored == original

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec(job_id="j", kind="teleport")

    def test_from_dict_ignores_unknown_keys(self):
        data = spec().to_dict()
        data["job_id"] = "j-1"
        data["future_field"] = "ignored"
        assert JobSpec.from_dict(data).job_id == "j-1"


class TestTransitions:
    def test_submit_fills_id_and_timestamp(self, queue):
        submitted = queue.submit(spec())
        assert submitted.job_id
        assert submitted.submitted_at > 0
        assert queue.counts() == {"pending": 1, "running": 0,
                                  "done": 0, "failed": 0}

    def test_claim_moves_to_running(self, queue):
        submitted = queue.submit(spec())
        claimed = queue.claim()
        assert claimed.job_id == submitted.job_id
        assert queue.counts()["running"] == 1
        assert queue.counts()["pending"] == 0

    def test_claim_oldest_first(self, queue):
        first = queue.submit(spec())
        second = queue.submit(spec())
        assert queue.claim().job_id == first.job_id
        assert queue.claim().job_id == second.job_id
        assert queue.claim() is None

    def test_complete_attaches_result(self, queue):
        submitted = queue.submit(spec())
        claimed = queue.claim()
        queue.complete(claimed, {"total_samples": 42})
        outcome = queue.outcome(submitted.job_id)
        assert outcome["result"]["total_samples"] == 42
        assert outcome["finished_at"] > 0
        assert queue.counts()["running"] == 0

    def test_fail_attaches_error(self, queue):
        submitted = queue.submit(spec())
        queue.fail(queue.claim(), "boom")
        outcome = queue.outcome(submitted.job_id)
        assert outcome["error"] == "boom"
        assert queue.counts()["failed"] == 1

    def test_requeue_counts_attempt(self, queue):
        queue.submit(spec())
        claimed = queue.claim()
        requeued = queue.requeue(claimed, reason="timeout")
        assert requeued.attempts == 1
        assert queue.counts()["pending"] == 1
        again = queue.claim()
        assert again.attempts == 1
        assert again.meta["last_requeue"] == "timeout"

    def test_outcome_none_while_in_flight(self, queue):
        submitted = queue.submit(spec())
        assert queue.outcome(submitted.job_id) is None
        queue.claim()
        assert queue.outcome(submitted.job_id) is None


class TestRecovery:
    def test_recover_returns_running_to_pending(self, queue):
        queue.submit(spec())
        queue.submit(spec())
        queue.claim()
        queue.claim()
        # Simulate a daemon crash: claims sit in running/ forever.
        recovered = queue.recover()
        assert len(recovered) == 2
        assert all(job.attempts == 1 for job in recovered)
        assert all(job.meta["last_requeue"] == "daemon-crash"
                   for job in recovered)
        assert queue.counts() == {"pending": 2, "running": 0,
                                  "done": 0, "failed": 0}

    def test_recover_empty_is_noop(self, queue):
        assert queue.recover() == []


class TestAtomicity:
    def test_no_tmp_files_left_behind(self, queue):
        queue.submit(spec())
        queue.complete(queue.claim(), {})
        for state in ("pending", "running", "done", "failed"):
            names = os.listdir(os.path.join(queue.root, state))
            assert all(name.endswith(".json") for name in names)

    def test_claim_skips_stolen_jobs(self, queue, tmp_path):
        """A lost rename race (file already claimed) tries the next."""
        first = queue.submit(spec())
        second = queue.submit(spec())
        # Another daemon wins the race for the first job.
        other = SpoolQueue(queue.root)
        stolen = other.claim()
        assert stolen.job_id == first.job_id
        claimed = queue.claim()
        assert claimed.job_id == second.job_id

    def test_non_json_files_ignored(self, queue):
        with open(os.path.join(queue.root, "pending", "README"), "w") as fh:
            fh.write("not a job")
        assert queue.claim() is None
        assert queue.pending_count() == 0

    def test_job_files_are_valid_json(self, queue):
        submitted = queue.submit(spec(period=32))
        path = os.path.join(queue.root, "pending",
                            f"{submitted.job_id}.json")
        with open(path) as fh:
            data = json.load(fh)
        assert data["period"] == 32
        assert data["kind"] == "profile"


class TestFairness:
    def test_pending_quota_backpressure(self, tmp_path):
        queue = SpoolQueue(str(tmp_path / "spool"),
                           policy=FairnessPolicy(max_pending_per_tenant=2,
                                                 retry_after=0.25))
        queue.submit(spec(tenant="a"))
        queue.submit(spec(tenant="a"))
        with pytest.raises(QuotaExceeded) as excinfo:
            queue.submit(spec(tenant="a"))
        assert excinfo.value.retry_after == 0.25
        assert "quota" in excinfo.value.reason
        # Another tenant still has room.
        queue.submit(spec(tenant="b"))

    def test_queue_depth_backpressure(self, tmp_path):
        queue = SpoolQueue(str(tmp_path / "spool"),
                           policy=FairnessPolicy(max_queue_depth=1))
        queue.submit(spec(tenant="a"))
        with pytest.raises(QuotaExceeded, match="depth"):
            queue.submit(spec(tenant="b"))

    def test_weighted_claim_order(self, tmp_path):
        queue = SpoolQueue(
            str(tmp_path / "spool"),
            policy=FairnessPolicy(tenant_weights={"a": 2, "b": 1}))
        for _ in range(6):
            queue.submit(spec(tenant="a"))
            queue.submit(spec(tenant="b"))
        claimed = [queue.claim().tenant for _ in range(6)]
        # Stride scheduling: weight-2 a is claimed twice as often.
        assert claimed.count("a") == 4
        assert claimed.count("b") == 2

    def test_priority_within_tenant(self, queue):
        low = queue.submit(spec(priority=0))
        high = queue.submit(spec(priority=5))
        assert queue.claim().job_id == high.job_id
        assert queue.claim().job_id == low.job_id

    def test_inflight_bound_throttles_tenant(self, tmp_path):
        queue = SpoolQueue(str(tmp_path / "spool"),
                           policy=FairnessPolicy(
                               max_inflight_per_tenant=1))
        first = queue.submit(spec(tenant="a"))
        queue.submit(spec(tenant="a"))
        claimed = queue.claim()
        assert claimed.job_id == first.job_id
        # Tenant a is at its bound: nothing claimable.
        assert queue.claim() is None
        queue.complete(claimed, {})
        assert queue.claim() is not None

    def test_inflight_bound_skips_to_other_tenant(self, tmp_path):
        queue = SpoolQueue(str(tmp_path / "spool"),
                           policy=FairnessPolicy(
                               max_inflight_per_tenant=1))
        queue.submit(spec(tenant="a"))
        queue.submit(spec(tenant="a"))
        other = queue.submit(spec(tenant="b"))
        queue.claim()  # a's first job; a is now at its bound
        assert queue.claim().job_id == other.job_id


class TestClaimRaces:
    def test_threaded_daemons_never_double_claim(self, tmp_path):
        """Two daemons hammering one spool: the atomic rename makes the
        loser of every race see FileNotFoundError and move on, so each
        job is claimed exactly once."""
        root = str(tmp_path / "spool")
        setup = SpoolQueue(root)
        submitted = {setup.submit(spec()).job_id for _ in range(24)}
        claims = {0: [], 1: []}
        barrier = threading.Barrier(2)

        def daemon(slot):
            queue = SpoolQueue(root)
            barrier.wait()
            while True:
                job = queue.claim()
                if job is None:
                    break
                claims[slot].append(job.job_id)

        threads = [threading.Thread(target=daemon, args=(slot,))
                   for slot in claims]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not set(claims[0]) & set(claims[1])
        assert set(claims[0]) | set(claims[1]) == submitted

    def test_recover_drops_stale_claim_of_finished_job(self, queue):
        """A running file whose job already has an outcome is a stale
        leftover; recover must remove it, not resurrect the job."""
        queue.submit(spec())
        claimed = queue.claim()
        queue.complete(claimed, {"total_samples": 7})
        # Simulate the stale claim a crashed daemon left behind.
        queue._write(queue._path("running", claimed.job_id),
                     claimed.to_dict())
        assert queue.recover() == []
        assert queue.counts() == {"pending": 0, "running": 0,
                                  "done": 1, "failed": 0}
        assert queue.outcome(claimed.job_id)["result"][
            "total_samples"] == 7


class TestSweep:
    def finish_one(self, queue, **kw):
        submitted = queue.submit(spec(**kw))
        queue.complete(queue.claim(), {"total_samples": 1})
        return submitted

    def test_aged_outcomes_removed_fresh_kept(self, queue):
        old = self.finish_one(queue, seed=1)
        fresh = self.finish_one(queue, seed=2)
        # Backdate the first outcome's recorded finish time.
        path = queue._path("done", old.job_id)
        data = queue._read(path)
        data["finished_at"] = data["finished_at"] - 1000.0
        queue._write(path, data)
        assert queue.sweep(retention=500.0) == 1
        assert queue.outcome(old.job_id) is None
        assert queue.outcome(fresh.job_id) is not None

    def test_failed_outcomes_swept_too(self, queue):
        submitted = queue.submit(spec(max_attempts=1))
        queue.fail(queue.claim(), "boom")
        path = queue._path("failed", submitted.job_id)
        data = queue._read(path)
        data["finished_at"] = data["finished_at"] - 1000.0
        queue._write(path, data)
        assert queue.sweep(retention=500.0) == 1
        assert queue.counts()["failed"] == 0

    def test_disabled_retention_keeps_everything(self, queue):
        self.finish_one(queue)
        assert queue.sweep(retention=None) == 0
        assert queue.sweep(retention=0) == 0
        assert queue.sweep(retention=-5.0) == 0
        assert queue.counts()["done"] == 1

    def test_mtime_fallback_when_no_finished_at(self, queue, tmp_path):
        submitted = self.finish_one(queue)
        path = queue._path("done", submitted.job_id)
        data = queue._read(path)
        del data["finished_at"]
        queue._write(path, data)
        os.utime(path, (1.0, 1.0))  # epoch-old mtime
        assert queue.sweep(retention=500.0) == 1

    def test_pending_and_running_never_swept(self, queue):
        queue.submit(spec(seed=1))
        queue.submit(spec(seed=2))
        queue.claim()
        assert queue.sweep(retention=0.0000001, now=10**12) == 0
        counts = queue.counts()
        assert counts["pending"] == 1 and counts["running"] == 1
