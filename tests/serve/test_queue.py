"""Tests for the spool-directory job queue."""

import json
import os

import pytest

from repro.serve.queue import JobSpec, SpoolQueue


@pytest.fixture
def queue(tmp_path):
    return SpoolQueue(str(tmp_path / "spool"))


def spec(workload="montecarlo", **kw):
    return JobSpec(job_id="", kind="profile", workload=workload, **kw)


class TestJobSpec:
    def test_round_trip(self):
        original = spec(period=32, seed=7, timeout=10.0,
                        meta={"trace_path": "/tmp/t"})
        original.job_id = "j-1"
        restored = JobSpec.from_dict(original.to_dict())
        assert restored == original

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec(job_id="j", kind="teleport")

    def test_from_dict_ignores_unknown_keys(self):
        data = spec().to_dict()
        data["job_id"] = "j-1"
        data["future_field"] = "ignored"
        assert JobSpec.from_dict(data).job_id == "j-1"


class TestTransitions:
    def test_submit_fills_id_and_timestamp(self, queue):
        submitted = queue.submit(spec())
        assert submitted.job_id
        assert submitted.submitted_at > 0
        assert queue.counts() == {"pending": 1, "running": 0,
                                  "done": 0, "failed": 0}

    def test_claim_moves_to_running(self, queue):
        submitted = queue.submit(spec())
        claimed = queue.claim()
        assert claimed.job_id == submitted.job_id
        assert queue.counts()["running"] == 1
        assert queue.counts()["pending"] == 0

    def test_claim_oldest_first(self, queue):
        first = queue.submit(spec())
        second = queue.submit(spec())
        assert queue.claim().job_id == first.job_id
        assert queue.claim().job_id == second.job_id
        assert queue.claim() is None

    def test_complete_attaches_result(self, queue):
        submitted = queue.submit(spec())
        claimed = queue.claim()
        queue.complete(claimed, {"total_samples": 42})
        outcome = queue.outcome(submitted.job_id)
        assert outcome["result"]["total_samples"] == 42
        assert outcome["finished_at"] > 0
        assert queue.counts()["running"] == 0

    def test_fail_attaches_error(self, queue):
        submitted = queue.submit(spec())
        queue.fail(queue.claim(), "boom")
        outcome = queue.outcome(submitted.job_id)
        assert outcome["error"] == "boom"
        assert queue.counts()["failed"] == 1

    def test_requeue_counts_attempt(self, queue):
        queue.submit(spec())
        claimed = queue.claim()
        requeued = queue.requeue(claimed, reason="timeout")
        assert requeued.attempts == 1
        assert queue.counts()["pending"] == 1
        again = queue.claim()
        assert again.attempts == 1
        assert again.meta["last_requeue"] == "timeout"

    def test_outcome_none_while_in_flight(self, queue):
        submitted = queue.submit(spec())
        assert queue.outcome(submitted.job_id) is None
        queue.claim()
        assert queue.outcome(submitted.job_id) is None


class TestRecovery:
    def test_recover_returns_running_to_pending(self, queue):
        queue.submit(spec())
        queue.submit(spec())
        queue.claim()
        queue.claim()
        # Simulate a daemon crash: claims sit in running/ forever.
        recovered = queue.recover()
        assert len(recovered) == 2
        assert all(job.attempts == 1 for job in recovered)
        assert all(job.meta["last_requeue"] == "daemon-crash"
                   for job in recovered)
        assert queue.counts() == {"pending": 2, "running": 0,
                                  "done": 0, "failed": 0}

    def test_recover_empty_is_noop(self, queue):
        assert queue.recover() == []


class TestAtomicity:
    def test_no_tmp_files_left_behind(self, queue):
        queue.submit(spec())
        queue.complete(queue.claim(), {})
        for state in ("pending", "running", "done", "failed"):
            names = os.listdir(os.path.join(queue.root, state))
            assert all(name.endswith(".json") for name in names)

    def test_claim_skips_stolen_jobs(self, queue, tmp_path):
        """A lost rename race (file already claimed) tries the next."""
        first = queue.submit(spec())
        second = queue.submit(spec())
        # Another daemon wins the race for the first job.
        other = SpoolQueue(queue.root)
        stolen = other.claim()
        assert stolen.job_id == first.job_id
        claimed = queue.claim()
        assert claimed.job_id == second.job_id

    def test_non_json_files_ignored(self, queue):
        with open(os.path.join(queue.root, "pending", "README"), "w") as fh:
            fh.write("not a job")
        assert queue.claim() is None
        assert queue.pending_count() == 0

    def test_job_files_are_valid_json(self, queue):
        submitted = queue.submit(spec(period=32))
        path = os.path.join(queue.root, "pending",
                            f"{submitted.job_id}.json")
        with open(path) as fh:
            data = json.load(fh)
        assert data["period"] == 32
        assert data["kind"] == "profile"
