"""Optimize jobs through the serve tier: store, daemon, fleet, HTTP."""

import asyncio

import pytest

from repro.serve.http import HttpFrontDoor, http_request
from repro.serve.queue import JobSpec, SpoolQueue
from repro.serve.router import Fleet
from repro.serve.service import ProfilingService, execute_job
from repro.serve.store import ProfileStore

WORKLOAD = "unsized-growth"


def verdict_dict(status="accepted", **kw):
    data = {"workload": WORKLOAD, "variant": "baseline",
            "family": "djxperf", "status": status,
            "transform": "presize", "target": "Pipeline.grow:42",
            "baseline_cycles": 100, "optimized_cycles": 80}
    data.update(kw)
    return data


class TestStore:
    def test_put_get_round_trip(self, tmp_path):
        with ProfileStore(str(tmp_path / "s.sqlite")) as store:
            store.put_optimize("job-1", verdict_dict())
            row = store.get_optimize("job-1")
            assert row["job_id"] == "job-1"
            assert row["verdict"] == verdict_dict()

    def test_get_returns_latest(self, tmp_path):
        with ProfileStore(str(tmp_path / "s.sqlite")) as store:
            store.put_optimize("job-1", verdict_dict(status="rejected"),
                               created_at=1.0)
            store.put_optimize("job-1", verdict_dict(), created_at=2.0)
            assert store.get_optimize("job-1")["verdict"]["status"] \
                == "accepted"

    def test_missing_job_is_none(self, tmp_path):
        with ProfileStore(str(tmp_path / "s.sqlite")) as store:
            assert store.get_optimize("nope") is None

    def test_history_filters(self, tmp_path):
        with ProfileStore(str(tmp_path / "s.sqlite")) as store:
            store.put_optimize("j1", verdict_dict())
            store.put_optimize("j2", verdict_dict(status="rejected"))
            store.put_optimize(
                "j3", verdict_dict(workload="padded-layout"))
            assert len(store.optimize_history()) == 3
            accepted = store.optimize_history(status="accepted")
            assert {r["job_id"] for r in accepted} == {"j1", "j3"}
            padded = store.optimize_history(workload="padded-layout")
            assert [r["job_id"] for r in padded] == ["j3"]

    def test_stats_counts_verdicts(self, tmp_path):
        with ProfileStore(str(tmp_path / "s.sqlite")) as store:
            assert store.stats()["optimize_verdicts"] == 0
            store.put_optimize("j1", verdict_dict())
            assert store.stats()["optimize_verdicts"] == 1


class TestExecuteAndDaemon:
    def test_execute_optimize_job(self):
        spec = JobSpec(job_id="j", kind="optimize", workload=WORKLOAD,
                       threshold=0)
        result = execute_job(spec.to_dict())
        assert result["kind"] == "optimize"
        verdict = result["verdict"]
        assert verdict["status"] == "accepted"
        assert verdict["transform"] == "presize"
        assert verdict["optimized_cycles"] < verdict["baseline_cycles"]

    def test_daemon_persists_verdict(self, tmp_path):
        spool = str(tmp_path / "spool")
        queue = SpoolQueue(spool)
        submitted = queue.submit(JobSpec(
            job_id="", kind="optimize", workload=WORKLOAD, threshold=0))
        with ProfilingService(spool, str(tmp_path / "store.sqlite"),
                              jobs=1) as service:
            assert service.drain() == 1
            outcome = service.queue.outcome(submitted.job_id)
            assert outcome["result"]["status"] == "accepted"
            row = service.store.get_optimize(submitted.job_id)
            assert row["verdict"]["transform"] == "presize"

    def test_bad_family_combo_fails_job(self, tmp_path):
        spool = str(tmp_path / "spool")
        queue = SpoolQueue(spool)
        submitted = queue.submit(JobSpec(
            job_id="", kind="optimize", workload=WORKLOAD,
            family="redundancy", threshold=0,
            meta={"transform": "presize"}, max_attempts=1))
        with ProfilingService(spool, str(tmp_path / "store.sqlite"),
                              jobs=1) as service:
            service.drain()
            outcome = service.queue.outcome(submitted.job_id)
            assert "not applicable" in outcome["error"]


class TestHttp:
    def drive(self, tmp_path, coro_fn, shards=2):
        async def runner():
            with Fleet(str(tmp_path / "fleet"), shards=shards) as fleet:
                door = HttpFrontDoor(fleet)
                await door.start()
                try:
                    return await coro_fn(fleet, door)
                finally:
                    await door.stop()
        return asyncio.run(runner())

    def test_submit_drain_fetch_round_trip(self, tmp_path):
        async def scenario(fleet, door):
            status, data, _h = await http_request(
                door.host, door.port, "POST", "/submit",
                {"workload": WORKLOAD, "kind": "optimize"})
            assert status == 202
            job_id, shard = data["job_id"], data["shard"]
            await asyncio.get_event_loop().run_in_executor(
                None, fleet.services[shard].drain)
            status, data, _h = await http_request(
                door.host, door.port, "GET", f"/optimize/{job_id}")
            assert status == 200
            assert data["verdict"]["status"] == "accepted"
            assert data["shard"] == shard
            status, data, _h = await http_request(
                door.host, door.port, "GET",
                "/optimize?status=accepted")
            assert status == 200
            assert len(data["verdicts"]) == 1
        self.drive(tmp_path, scenario)

    def test_unknown_verdict_is_404(self, tmp_path):
        async def scenario(fleet, door):
            status, _data, _h = await http_request(
                door.host, door.port, "GET", "/optimize/nope")
            assert status == 404
        self.drive(tmp_path, scenario)

    def test_meta_field_on_profile_kind_is_400(self, tmp_path):
        async def scenario(fleet, door):
            status, data, _h = await http_request(
                door.host, door.port, "POST", "/submit",
                {"workload": WORKLOAD, "transform": "presize"})
            assert status == 400
            assert "only applies to optimize jobs" in data["error"]
        self.drive(tmp_path, scenario)


class TestFleetViews:
    def test_cross_shard_verdict_lookup(self, tmp_path):
        with Fleet(str(tmp_path / "fleet"), shards=2) as fleet:
            submitted, shard = fleet.submit(JobSpec(
                job_id="", kind="optimize", workload=WORKLOAD,
                threshold=0))
            fleet.services[shard].drain()
            row = fleet.optimize_verdict(submitted.job_id)
            assert row is not None
            assert row["shard"] == shard
            history = fleet.optimize_history(status="accepted")
            assert len(history) == 1
