"""Tests for shard placement, the fleet dedupe index, and the fleet."""

import pytest

from repro.serve.queue import FairnessPolicy, JobSpec, QuotaExceeded
from repro.serve.router import (
    Fleet,
    FleetIndex,
    ShardRouter,
    shard_for,
)
from repro.serve.store import ProfileKey

WORKLOAD = "objectlayout"


def key(seed=None, program="p" * 64, config="c" * 64):
    return ProfileKey(workload="w", variant="baseline",
                      program_hash=program, config_hash=config, seed=seed)


def spec(workload=WORKLOAD, **kw):
    kw.setdefault("period", 32)
    return JobSpec(job_id="", kind="profile", workload=workload, **kw)


class TestShardFor:
    def test_deterministic(self):
        assert shard_for("w", "abc", 4) == shard_for("w", "abc", 4)

    def test_in_range_and_spread(self):
        placements = {shard_for(f"w{i}", "abc", 4) for i in range(64)}
        assert placements <= set(range(4))
        # 64 distinct workloads must not all collapse onto one shard.
        assert len(placements) > 1

    def test_sees_program_hash(self):
        hashes = [f"h{i}" for i in range(64)]
        assert len({shard_for("w", h, 4) for h in hashes}) > 1

    def test_single_shard_always_zero(self):
        assert shard_for("anything", "at-all", 1) == 0

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError, match="shards"):
            shard_for("w", "h", 0)


class TestShardRouter:
    def test_creates_layout(self, tmp_path):
        import os
        router = ShardRouter(str(tmp_path / "fleet"), shards=3)
        for shard in range(3):
            assert os.path.isdir(router.spool_dir(shard))
        assert router.index_path.endswith("fleet-index.sqlite")

    def test_route_matches_shard_for(self, tmp_path):
        router = ShardRouter(str(tmp_path / "fleet"), shards=3)
        assert router.route("w", "h") == shard_for("w", "h", 3)


class TestFleetIndex:
    @pytest.fixture
    def index(self, tmp_path):
        with FleetIndex(str(tmp_path / "idx.sqlite")) as idx:
            yield idx

    def test_register_lookup_round_trip(self, index):
        index.register(key(seed=7), shard=2, record_id=13,
                       store_path="/s/store.sqlite")
        hit = index.lookup("p" * 64, "c" * 64, 7)
        assert hit.shard == 2
        assert hit.record_id == 13
        assert hit.workload == "w"

    def test_lookup_miss(self, index):
        assert index.lookup("nope", "nope", None) is None

    def test_seedless_and_seeded_are_distinct(self, index):
        index.register(key(seed=None), shard=0, record_id=1,
                       store_path="/a")
        index.register(key(seed=0), shard=1, record_id=2,
                       store_path="/b")
        assert index.lookup("p" * 64, "c" * 64, None).record_id == 1
        assert index.lookup("p" * 64, "c" * 64, 0).record_id == 2
        assert index.count() == 2

    def test_reregister_last_writer_wins(self, index):
        index.register(key(), shard=0, record_id=1, store_path="/a")
        index.register(key(), shard=3, record_id=9, store_path="/b")
        hit = index.lookup("p" * 64, "c" * 64, None)
        assert (hit.shard, hit.record_id) == (3, 9)
        assert index.count() == 1

    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "idx.sqlite")
        with FleetIndex(path) as index:
            index.register(key(), shard=1, record_id=5, store_path="/a")
        with FleetIndex(path) as index:
            assert index.lookup("p" * 64, "c" * 64, None).shard == 1

    def test_version_mismatch_rejected(self, tmp_path):
        import sqlite3
        path = str(tmp_path / "idx.sqlite")
        FleetIndex(path).close()
        db = sqlite3.connect(path)
        db.execute("PRAGMA user_version = 99")
        db.commit()
        db.close()
        with pytest.raises(ValueError, match="version"):
            FleetIndex(path)


class TestFleet:
    """Fleet-level behaviour without daemon threads: jobs are executed
    by calling the owning shard's service directly, keeping the tests
    deterministic."""

    def drain_all(self, fleet):
        for service in fleet.services:
            service.drain()

    def test_submit_routes_deterministically(self, tmp_path):
        with Fleet(str(tmp_path / "fleet"), shards=3) as fleet:
            _, shard_a = fleet.submit(spec())
            _, shard_b = fleet.submit(spec())
            assert shard_a == shard_b
            assert fleet.services[shard_a].queue.pending_count() == 2

    def test_unknown_workload_rejected_before_enqueue(self, tmp_path):
        with Fleet(str(tmp_path / "fleet"), shards=2) as fleet:
            with pytest.raises(KeyError):
                fleet.submit(spec(workload="no-such"))
            assert all(s.queue.pending_count() == 0
                       for s in fleet.services)

    def test_queue_policy_applies_per_shard(self, tmp_path):
        policy = FairnessPolicy(max_pending_per_tenant=1)
        with Fleet(str(tmp_path / "fleet"), shards=2,
                   queue_policy=policy) as fleet:
            fleet.submit(spec(tenant="t"))
            with pytest.raises(QuotaExceeded):
                fleet.submit(spec(tenant="t"))

    def test_status_and_history_span_shards(self, tmp_path):
        with Fleet(str(tmp_path / "fleet"), shards=2) as fleet:
            submitted, shard = fleet.submit(spec(seed=3))
            assert fleet.status(submitted.job_id)["state"] == "pending"
            self.drain_all(fleet)
            status = fleet.status(submitted.job_id)
            assert status["state"] == "done"
            assert status["shard"] == shard
            records = fleet.history()
            assert len(records) == 1
            assert records[0]["shard"] == shard
        assert fleet.status("no-such-job") is None

    def test_stats_shape(self, tmp_path):
        with Fleet(str(tmp_path / "fleet"), shards=2) as fleet:
            fleet.submit(spec(seed=5))
            self.drain_all(fleet)
            stats = fleet.stats()
            assert stats["shard_count"] == 2
            assert len(stats["shards"]) == 2
            assert sum(s["completed"] for s in stats["shards"]) == 1
            assert stats["dedupe"]["indexed"] == 1

    def test_reshard_serves_duplicate_cross_shard(self, tmp_path):
        """The tentpole property: after growing the shard count, the
        remapped duplicate is a fleet-index hit served from the old
        shard's store with zero simulator work on the new home."""
        root = str(tmp_path / "fleet")
        with Fleet(root, shards=2) as fleet:
            program_hash, origin = fleet._route_key(WORKLOAD, "baseline")
            fleet.submit(spec(seed=42))
            self.drain_all(fleet)

        new_shards = 3
        while shard_for(WORKLOAD, program_hash, new_shards) == origin:
            new_shards += 1
        with Fleet(root, shards=new_shards) as fleet:
            repeat, new_home = fleet.submit(spec(seed=42))
            assert new_home != origin
            fleet.services[new_home].drain()
            service = fleet.services[new_home]
            assert service.fleet_hits == 1
            assert service.pool.stats["tasks"] == 0
            outcome = service.queue.outcome(repeat.job_id)
            assert outcome["result"]["fleet"] is True
            assert outcome["result"]["origin_shard"] == origin


class TestFleetExternalWorkers:
    """Router-only assembly for the multi-process fleet."""

    def test_invalid_workers_value_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="workers must be"):
            Fleet(str(tmp_path / "fleet"), shards=2, workers="fibers")

    def test_no_services_and_start_is_a_noop(self, tmp_path):
        with Fleet(str(tmp_path / "fleet"), shards=2,
                   workers="external") as fleet:
            assert fleet.services == []
            fleet.start()  # must not spawn threads
            assert fleet._threads == []

    def test_submit_enqueues_without_executing(self, tmp_path):
        """External mode is routing only: the job lands in pending/
        for a worker process to claim; nothing simulates here."""
        with Fleet(str(tmp_path / "fleet"), shards=2,
                   workers="external") as fleet:
            submitted, shard = fleet.submit(spec())
            status = fleet.status(submitted.job_id)
            assert status["state"] == "pending"
            assert status["shard"] == shard
            assert fleet._queues[shard].counts()["pending"] == 1

    def test_external_worker_process_roundtrip(self, tmp_path):
        """Claim + complete through a second bare queue (standing in
        for the worker process) becomes visible to the router."""
        with Fleet(str(tmp_path / "fleet"), shards=2,
                   workers="external") as fleet:
            submitted, shard = fleet.submit(spec())
            worker_queue = type(fleet._queues[shard])(
                fleet.router.spool_dir(shard))
            claimed = worker_queue.claim()
            worker_queue.complete(claimed, {"total_samples": 5})
            status = fleet.status(submitted.job_id)
            assert status["state"] == "done"
            assert status["job"]["result"]["total_samples"] == 5

    def test_stats_reads_worker_heartbeats(self, tmp_path):
        import json as _json
        import os as _os

        from repro.serve.service import STATUS_FILE

        with Fleet(str(tmp_path / "fleet"), shards=2,
                   workers="external") as fleet:
            heartbeat = {"ts": 123.0, "pid": 4242, "state": "idle",
                         "completed": 7, "failed": 1, "cached_hits": 2,
                         "warm": {"hits": 9, "misses": 3},
                         "fleet": {"dedupe_hits": 1,
                                   "dedupe_misses": 2}}
            path = _os.path.join(fleet.router.spool_dir(0), STATUS_FILE)
            with open(path, "a") as fh:
                fh.write(_json.dumps(heartbeat) + "\n")
            stats = fleet.stats()
            assert stats["workers"] == "external"
            shard0 = stats["shards"][0]
            assert shard0["completed"] == 7
            assert shard0["warm"] == {"hits": 9, "misses": 3}
            assert shard0["heartbeat"]["pid"] == 4242
            # Shard 1 never heartbeat: present but empty counters.
            shard1 = stats["shards"][1]
            assert shard1["heartbeat"]["pid"] is None
            assert shard1["completed"] == 0
            # Aggregate warm totals only count live heartbeats.
            assert stats["warm"] == {"hits": 9, "misses": 3}

    def test_threads_mode_stats_report_workers_field(self, tmp_path):
        with Fleet(str(tmp_path / "fleet"), shards=1) as fleet:
            stats = fleet.stats()
            assert stats["workers"] == "threads"
            assert stats["warm"] == {"hits": 0, "misses": 0}
