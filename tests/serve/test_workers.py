"""Tests for the process worker pool (timeouts, crashes, retries)."""

import os
import time

import pytest

from repro.serve.workers import TaskOutcome, WorkerPool


# Workers must be module-level so they pickle into child processes.
def square(x):
    return x * x


def failing(x):
    if x < 0:
        raise ValueError(f"negative input {x}")
    return x


def sleepy(seconds):
    time.sleep(seconds)
    return seconds


def crashing(x):
    if x == "die":
        os._exit(13)
    return x


class TestSerialPath:
    """jobs<=1 runs in-process: same outcome surface, no subprocesses."""

    def test_map_in_order(self):
        with WorkerPool(square, jobs=1) as pool:
            outcomes = pool.map([3, 1, 2])
        assert [o.value for o in outcomes] == [9, 1, 4]
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(o.ok for o in outcomes)

    def test_error_captured_not_raised(self):
        with WorkerPool(failing, jobs=1) as pool:
            outcomes = pool.map([1, -5, 2])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "negative input -5" in outcomes[1].error
        with pytest.raises(RuntimeError, match="negative input"):
            outcomes[1].unwrap()

    def test_unwrap_returns_value(self):
        assert TaskOutcome(index=0, ok=True, value=7).unwrap() == 7


class TestProcessPath:
    def test_map_in_order_across_processes(self):
        with WorkerPool(square, jobs=2) as pool:
            outcomes = pool.map([4, 5, 6, 7])
        assert [o.value for o in outcomes] == [16, 25, 36, 49]
        assert pool.stats["tasks"] == 4

    def test_deterministic_error_not_retried(self):
        with WorkerPool(failing, jobs=2, retries=3) as pool:
            outcomes = pool.map([1, -2])
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert outcomes[1].attempts == 1
        assert pool.stats["retries"] == 0

    def test_timeout_kills_straggler(self):
        with WorkerPool(sleepy, jobs=2, timeout=1.0, retries=0,
                        backoff=0.0) as pool:
            outcomes = pool.map([0.01, 30.0])
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert outcomes[1].timed_out
        assert "timed out" in outcomes[1].error
        assert pool.stats["timeouts"] == 1
        assert pool.stats["pool_recycles"] == 1

    def test_timeout_retry_can_succeed(self):
        # First attempt of the batch exceeds the timeout only for the
        # slow task; the retry (alone in its wave) fits the window.
        with WorkerPool(sleepy, jobs=2, timeout=2.0, retries=1,
                        backoff=0.0) as pool:
            outcomes = pool.map([0.01, 0.02])
        assert all(o.ok for o in outcomes)

    def test_crash_isolated_to_in_flight_tasks(self):
        with WorkerPool(crashing, jobs=2, retries=0,
                        backoff=0.0) as pool:
            outcomes = pool.map(["ok-1", "die", "ok-2", "ok-3"])
        assert not outcomes[1].ok
        assert "died" in outcomes[1].error
        # Tasks in later waves still ran on the rebuilt pool.
        later = [o for o in outcomes if o.ok]
        assert {o.value for o in later} <= {"ok-1", "ok-2", "ok-3"}
        assert pool.stats["crashes"] >= 1

    def test_crash_retry_succeeds_when_transient(self, tmp_path):
        # A crash marker that disappears after the first attempt models
        # a transient worker death (OOM kill, etc).
        marker = str(tmp_path / "crash-once")
        with open(marker, "w") as fh:
            fh.write("x")
        with WorkerPool(_crash_once, jobs=2, retries=2,
                        backoff=0.0) as pool:
            outcomes = pool.map([marker])
        assert outcomes[0].ok
        assert outcomes[0].attempts >= 2
        assert pool.stats["retries"] >= 1

    def test_shutdown_rejects_new_work(self):
        pool = WorkerPool(square, jobs=2)
        pool.map([1])
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.map([2])

    def test_empty_batch(self):
        with WorkerPool(square, jobs=2) as pool:
            assert pool.map([]) == []


def _crash_once(marker):
    if os.path.exists(marker):
        os.remove(marker)
        os._exit(7)
    return "recovered"
