"""Tests for the serving-layer load generator and its CI gates."""

import pytest

from repro.bench import BenchReport, check_regression
from repro.serve.loadgen import (
    _DUP_SEED,
    FleetScalingPoint,
    FleetScalingResult,
    ServeLoadResult,
    _client_jobs,
    percentile,
    run_fleet_scaling,
    run_serve_load,
)


class TestPercentile:
    def test_nearest_rank(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 0.50) == 20.0
        assert percentile(samples, 0.99) == 40.0
        assert percentile(samples, 0.25) == 10.0

    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)


def result(**kw):
    defaults = dict(clients=2, shards=2, requests_per_client=2,
                    workloads=("a", "b"), jobs_total=4, jobs_ok=4,
                    jobs_failed=0, dedupe_hits=2, fleet_hits=1,
                    throttled=0, p50_ms=100.0, p99_ms=250.0,
                    mean_ms=120.0, max_ms=250.0, jobs_per_sec=3.0,
                    elapsed_seconds=1.5)
    defaults.update(kw)
    return ServeLoadResult(**defaults)


class TestServeLoadResult:
    def test_derived_rates(self):
        r = result()
        assert r.dedupe_hit_rate == 0.5
        assert r.tail_ratio == 2.5

    def test_zero_guards(self):
        r = result(jobs_ok=0, p50_ms=0.0)
        assert r.dedupe_hit_rate == 0.0
        assert r.tail_ratio == 0.0

    def test_to_dict_round_values(self):
        d = result(cross_shard={"hit": True}).to_dict()
        assert d["tail_ratio"] == 2.5
        assert d["dedupe_hit_rate"] == 0.5
        assert d["cross_shard"] == {"hit": True}


class TestClientJobs:
    def test_duplicates_share_the_dup_seed(self):
        jobs = _client_jobs(client=0, requests=4, workloads=("w",),
                            duplicate_fraction=0.5, tenant="t",
                            period=32)
        seeds = [j["seed"] for j in jobs]
        assert seeds.count(_DUP_SEED) == 2
        uniques = [s for s in seeds if s != _DUP_SEED]
        assert len(set(uniques)) == len(uniques)

    def test_unique_seeds_differ_across_clients(self):
        a = {j["seed"] for j in _client_jobs(0, 4, ("w",), 0.0, "t", 32)}
        b = {j["seed"] for j in _client_jobs(1, 4, ("w",), 0.0, "t", 32)}
        assert not a & b

    def test_workloads_rotate(self):
        jobs = _client_jobs(0, 4, ("x", "y"), 0.0, "t", 32)
        assert [j["workload"] for j in jobs] == ["x", "y", "x", "y"]


class TestServeGate:
    """check_regression over the serve_load section of a report."""

    def serve(self, **kw):
        base = {"tail_ratio": 2.0, "dedupe_hit_rate": 0.4,
                "cross_shard": {"hit": True}}
        base.update(kw)
        return base

    def baseline(self, **kw):
        return {"aggregate": {}, "serve_load": self.serve(**kw)}

    def report(self, **kw):
        return BenchReport(rows=[], repeat=1, serve_load=self.serve(**kw))

    def test_clean_run_passes(self):
        assert check_regression(self.report(), self.baseline()) == []

    def test_tail_ratio_ceiling(self):
        failures = check_regression(self.report(tail_ratio=4.5),
                                    self.baseline(), serve_tolerance=1.0)
        assert len(failures) == 1
        assert "tail ratio" in failures[0]
        # Within the ceiling: 4.0 == 2.0 * (1 + 1.0).
        assert check_regression(self.report(tail_ratio=4.0),
                                self.baseline(),
                                serve_tolerance=1.0) == []

    def test_dedupe_hit_rate_floor(self):
        failures = check_regression(self.report(dedupe_hit_rate=0.1),
                                    self.baseline(), tolerance=0.20)
        assert len(failures) == 1
        assert "dedupe" in failures[0]

    def test_cross_shard_hit_must_not_be_lost(self):
        failures = check_regression(
            self.report(cross_shard={"hit": False}), self.baseline())
        assert len(failures) == 1
        assert "cross-shard" in failures[0]

    def test_empty_report_fails(self):
        failures = check_regression(BenchReport(rows=[], repeat=1),
                                    {"aggregate": {}})
        assert failures == ["nothing to check: the run has neither "
                            "engine rows nor a serve arm section"]

    def test_serve_section_ignored_without_baseline(self):
        failures = check_regression(self.report(tail_ratio=99.0),
                                    {"aggregate": {}})
        assert failures == []


class TestEndToEnd:
    def test_small_load_run(self, tmp_path):
        """A tiny but real run: 2 clients, 2 shards, real HTTP, real
        daemons, the burst backpressure phase, and the reshard check."""
        result = run_serve_load(clients=2, shards=2,
                                requests_per_client=2,
                                root=str(tmp_path / "fleet"))
        assert result.jobs_failed == 0
        assert result.jobs_ok == 4
        assert result.dedupe_hits >= 1
        assert result.throttled >= 1  # the over-quota burst saw a 429
        assert result.p99_ms >= result.p50_ms > 0
        assert result.cross_shard["hit"] is True
        assert result.cross_shard["simulator_tasks"] == 0
        d = result.to_dict()
        assert set(d["per_shard_jobs"]) <= {"0", "1"}


def scaling_point(shards, jobs_per_sec, warm_hits=16, warm_misses=8,
                  jobs_ok=24, jobs_failed=0):
    return FleetScalingPoint(
        shards=shards, jobs_ok=jobs_ok, jobs_failed=jobs_failed,
        elapsed_seconds=jobs_ok / jobs_per_sec if jobs_per_sec else 0.0,
        jobs_per_sec=jobs_per_sec, warm_hits=warm_hits,
        warm_misses=warm_misses, per_shard_jobs={0: jobs_ok})


def scaling_result(base_jps=8.0, peak_jps=24.0, peak_shards=4, **kw):
    return FleetScalingResult(
        requests=24, clients=8, workloads=("a", "b"),
        points=(scaling_point(1, base_jps),
                scaling_point(peak_shards, peak_jps, **kw)))


class TestFleetScalingResult:
    def test_scaling_ratio_is_peak_over_single_shard(self):
        assert scaling_result(8.0, 24.0).scaling_ratio == \
            pytest.approx(3.0)

    def test_warm_hit_rate_of_largest_point(self):
        r = scaling_result(warm_hits=9, warm_misses=3)
        assert r.warm_hit_rate == pytest.approx(0.75)

    def test_zero_guards(self):
        assert scaling_result(0.0, 24.0).scaling_ratio == 0.0
        r = scaling_result(warm_hits=0, warm_misses=0)
        assert r.warm_hit_rate == 0.0

    def test_to_dict_shape(self):
        d = scaling_result(8.0, 12.0, peak_shards=2).to_dict()
        assert d["max_shards"] == 2
        assert d["scaling_ratio"] == 1.5
        assert [p["shards"] for p in d["points"]] == [1, 2]
        assert d["points"][0]["per_shard_jobs"] == {"0": 24}


class TestFleetScalingGate:
    """check_regression over the fleet_scaling section."""

    def fleet(self, **kw):
        base = {"scaling_ratio": 2.0, "warm_hit_rate": 0.6,
                "points": [{"shards": 1, "jobs_failed": 0},
                           {"shards": 4, "jobs_failed": 0}]}
        base.update(kw)
        return base

    def baseline(self, **kw):
        return {"aggregate": {}, "fleet_scaling": self.fleet(**kw)}

    def report(self, **kw):
        return BenchReport(rows=[], repeat=1,
                           fleet_scaling=self.fleet(**kw))

    def test_clean_run_passes(self):
        assert check_regression(self.report(), self.baseline()) == []

    def test_scaling_ratio_floor(self):
        # Floor = 2.0 * (1 - 0.20) = 1.6.
        failures = check_regression(self.report(scaling_ratio=1.5),
                                    self.baseline(), tolerance=0.20)
        assert len(failures) == 1
        assert "scaling ratio" in failures[0]
        assert check_regression(self.report(scaling_ratio=1.7),
                                self.baseline(), tolerance=0.20) == []

    def test_faster_checker_machine_passes(self):
        # A 1-core committing machine (ratio ~1.0) still gates a
        # multi-core checker: anything >= the floor passes.
        failures = check_regression(
            self.report(scaling_ratio=3.4),
            self.baseline(scaling_ratio=1.0))
        assert failures == []

    def test_warm_hit_rate_floor(self):
        failures = check_regression(self.report(warm_hit_rate=0.1),
                                    self.baseline(), tolerance=0.20)
        assert len(failures) == 1
        assert "warm compile-cache" in failures[0]

    def test_failed_jobs_fail_the_gate(self):
        failures = check_regression(
            self.report(points=[{"shards": 1, "jobs_failed": 0},
                                {"shards": 4, "jobs_failed": 2}]),
            self.baseline())
        assert len(failures) == 1
        assert "failed jobs" in failures[0]

    def test_section_ignored_without_baseline(self):
        assert check_regression(self.report(scaling_ratio=0.01),
                                {"aggregate": {}}) == []

    def test_missing_ratio_reported(self):
        fleet = self.fleet()
        del fleet["scaling_ratio"]
        failures = check_regression(
            BenchReport(rows=[], repeat=1, fleet_scaling=fleet),
            self.baseline())
        assert "no scaling_ratio" in failures[0]


class TestFleetScalingEndToEnd:
    def test_single_point_real_fleet(self, tmp_path):
        """One real supervised point: worker + front door processes,
        real sockets, warm stats harvested from heartbeats."""
        result = run_fleet_scaling(shards=(1,), requests=4, clients=2,
                                   workloads=("objectlayout",
                                              "kernel-array"),
                                   poll_interval=0.05,
                                   root=str(tmp_path / "scale"))
        assert [p.shards for p in result.points] == [1]
        point = result.points[0]
        assert point.jobs_ok == 4
        assert point.jobs_failed == 0
        assert point.jobs_per_sec > 0
        # 2 workloads x 2 runs each: the second run of each workload
        # hits the worker's warm compile cache.
        assert point.warm_hits > 0
        assert result.scaling_ratio == pytest.approx(1.0)
        d = result.to_dict()
        assert d["max_shards"] == 1
        assert d["points"][0]["warm_hit_rate"] > 0

    def test_bad_shard_sizes_rejected(self):
        with pytest.raises(ValueError):
            run_fleet_scaling(shards=())
        with pytest.raises(ValueError):
            run_fleet_scaling(shards=(0, 2))
        with pytest.raises(ValueError):
            run_fleet_scaling(shards=(2,), requests=0)
