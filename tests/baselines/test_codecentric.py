"""Tests for the code-centric (perf-style) baseline profiler."""

import pytest

from repro.baselines import CodeCentricProfiler
from repro.heap.layout import Kind
from repro.jvm import JProgram, Machine, MachineConfig, MethodBuilder

from tests.jvm.helpers import counting_loop

BIG = 8192


def scattered_access_program():
    """One hot object accessed from three separate code locations."""
    p = JProgram()
    b = MethodBuilder("App", "main", first_line=10)
    b.line(11).iconst(BIG).newarray(Kind.INT).store(0)
    for line in (20, 30, 40):
        b.line(line)
        counting_loop(b, BIG, 1,
                      lambda b: b.load(0).load(1).aload().pop())
    b.ret()
    p.add_builder(b)
    p.add_entry("main")
    return p


def run_profiled(program, period=16):
    profiler = CodeCentricProfiler(sample_period=period)
    machine = Machine(program, MachineConfig(heap_size=4 * 1024 * 1024))
    profiler.attach(machine)
    machine.run()
    return profiler, machine


class TestCodeCentric:
    def test_samples_attributed_to_code_lines(self):
        profiler, _ = run_profiled(scattered_access_program())
        result = profiler.analyze(profiler.frame_resolver())
        assert result.total() > 0
        lines = {s.location.line for s in result.top_locations(5)}
        assert lines & {20, 30, 40}

    def test_object_misses_fragment_across_locations(self):
        # The Figure 1 phenomenon: no single code location holds the
        # object's full miss count; each access loop gets roughly 1/3.
        profiler, _ = run_profiled(scattered_access_program())
        result = profiler.analyze(profiler.frame_resolver())
        top = result.top_locations(1)[0]
        assert result.share(top) < 0.6   # fragmented
        top3 = result.top_locations(3)
        total_share = sum(result.share(s) for s in top3)
        assert total_share > 0.8

    def test_call_paths_recorded(self):
        profiler, _ = run_profiled(scattered_access_program())
        result = profiler.analyze(profiler.frame_resolver())
        assert all(s.call_paths for s in result.top_locations(3))

    def test_detach_stops_sampling(self):
        profiler = CodeCentricProfiler(sample_period=16)
        machine = Machine(scattered_access_program(),
                          MachineConfig(heap_size=4 * 1024 * 1024))
        profiler.attach(machine)
        machine.run(max_instructions=20000)
        before = sum(profiler.total_samples.values())
        assert before > 0
        profiler.detach()
        machine.run()
        assert sum(profiler.total_samples.values()) == before

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            CodeCentricProfiler(sample_period=0)
