"""Tests for the reuse-distance (trace-based) baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.reusedist import (
    COLD,
    FenwickTree,
    ReuseDistanceProfiler,
    ReuseDistanceTracker,
)
from repro.core.javaagent import instrument_program
from repro.jvm import Machine
from repro.workloads import get_workload, run_native


class TestFenwick:
    def test_prefix_sums(self):
        t = FenwickTree(16)
        t.add(3, 1)
        t.add(7, 2)
        assert t.prefix_sum(2) == 0
        assert t.prefix_sum(3) == 1
        assert t.prefix_sum(16) == 3

    def test_range_sum(self):
        t = FenwickTree(16)
        for i in (1, 5, 9):
            t.add(i, 1)
        assert t.range_sum(2, 8) == 1
        assert t.range_sum(1, 16) == 3
        assert t.range_sum(6, 4) == 0

    def test_bounds(self):
        t = FenwickTree(4)
        with pytest.raises(IndexError):
            t.add(0, 1)
        with pytest.raises(IndexError):
            t.add(5, 1)

    @given(st.lists(st.tuples(st.integers(1, 50), st.integers(-3, 3)),
                    max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_array(self, updates):
        t = FenwickTree(50)
        naive = [0] * 51
        for index, delta in updates:
            t.add(index, delta)
            naive[index] += delta
        for i in range(1, 51):
            assert t.prefix_sum(i) == sum(naive[:i + 1])


def naive_distance(trace, i):
    """Oracle: distinct lines between trace[i] and its previous access."""
    line = trace[i]
    for j in range(i - 1, -1, -1):
        if trace[j] == line:
            return len(set(trace[j + 1:i]))
    return COLD


class TestTracker:
    def test_cold_and_immediate_reuse(self):
        t = ReuseDistanceTracker(capacity_hint=16)
        assert t.access(10) == COLD
        assert t.access(10) == 0

    def test_classic_example(self):
        # a b c a : distance of the second 'a' is 2 (b, c in between).
        t = ReuseDistanceTracker(capacity_hint=16)
        t.access(1)
        t.access(2)
        t.access(3)
        assert t.access(1) == 2

    def test_duplicates_between_count_once(self):
        # a b b a : distance 1 (only b between).
        t = ReuseDistanceTracker(capacity_hint=16)
        t.access(1)
        t.access(2)
        t.access(2)
        assert t.access(1) == 1

    def test_histogram_totals(self):
        t = ReuseDistanceTracker(capacity_hint=16)
        for line in (1, 2, 1, 2, 3, 1):
            t.access(line)
        assert sum(t.histogram.values()) == t.accesses == 6
        assert t.histogram[COLD] == 3

    def test_capacity_growth(self):
        t = ReuseDistanceTracker(capacity_hint=4)
        for i in range(40):
            t.access(i % 7)
        assert t.accesses == 40

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=80))
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_oracle(self, trace):
        t = ReuseDistanceTracker(capacity_hint=8)
        for i, line in enumerate(trace):
            assert t.access(line) == naive_distance(trace, i)


class TestMissRatioCurve:
    def test_mrc_monotone_nonincreasing(self):
        t = ReuseDistanceTracker(capacity_hint=64)
        for i in range(200):
            t.access(i % 17)
        capacities = [1, 2, 4, 8, 16, 32]
        mrc = t.miss_ratio_curve(capacities)
        assert all(a >= b - 1e-12 for a, b in zip(mrc, mrc[1:]))

    def test_mrc_endpoints(self):
        t = ReuseDistanceTracker(capacity_hint=64)
        # Cyclic sweep over 8 lines.
        for i in range(80):
            t.access(i % 8)
        mrc = t.miss_ratio_curve([1, 8, 100])
        assert mrc[0] == pytest.approx(1.0)    # cap 1: everything misses
        # cap >= working set: only the 8 cold accesses miss.
        assert mrc[2] == pytest.approx(8 / 80)

    def test_mean_distance(self):
        t = ReuseDistanceTracker(capacity_hint=16)
        t.access(1)
        t.access(1)          # distance 0
        t.access(2)
        t.access(1)          # distance 1
        assert t.mean_distance() == pytest.approx(0.5)

    def test_empty_tracker(self):
        t = ReuseDistanceTracker(capacity_hint=4)
        assert t.miss_ratio_curve([4]) == [0.0]
        assert t.mean_distance() == 0.0


class TestProfilerOnWorkload:
    def run_profiled(self, charge_overhead=False):
        workload = get_workload("objectlayout")
        program = instrument_program(workload.build_verified())
        machine = Machine(program, workload.machine_config())
        profiler = ReuseDistanceProfiler(
            modelled_cache_lines=128,        # the scaled 8KB L1
            charge_overhead=charge_overhead)
        profiler.attach(machine)
        result = machine.run()
        return profiler, result

    def test_ranking_agrees_with_pmu_profiler(self):
        profiler, _ = self.run_profiled()
        analysis = profiler.analyze()
        top = analysis.top_sites(1)[0]
        # Same culprit DJXPerf finds: the loop allocation at run:292.
        assert top.location == "Objectlayout.run:292"
        assert top.predicted_misses > 0

    def test_trace_covers_every_access(self):
        # The tracker sees the full *application* access stream (GC's
        # internal cache pollution is not application accesses).
        workload = get_workload("objectlayout")
        program = instrument_program(workload.build_verified())
        machine = Machine(program, workload.machine_config())
        profiler = ReuseDistanceProfiler(modelled_cache_lines=128,
                                         charge_overhead=False)
        profiler.attach(machine)

        from repro.obs.collector import Collector

        class CountAccesses(Collector):
            label = "count"
            wants_accesses = True

            def __init__(self):
                super().__init__()
                self.count = 0

            def on_access(self, event):
                self.count += 1

        counter = CountAccesses()
        machine.bus.subscribe(counter)
        machine.run()
        analysis = profiler.analyze()
        assert analysis.total_accesses == counter.count
        assert analysis.total_accesses > 0

    def test_overhead_is_brutal(self):
        workload = get_workload("objectlayout")
        native = run_native(workload).wall_cycles
        _, traced = self.run_profiled(charge_overhead=True)
        overhead = traced.wall_cycles / native
        # The 30-200x family (scaled workloads land at the low end).
        assert overhead > 3.0

    def test_gc_keeps_attribution_valid(self):
        profiler, result = self.run_profiled()
        assert result.gc_collections > 0
        analysis = profiler.analyze()
        assert analysis.top_sites(1)[0].location == "Objectlayout.run:292"
