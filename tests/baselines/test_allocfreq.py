"""Tests for the allocation-frequency baseline profiler."""

from repro.baselines import AllocFrequencyProfiler
from repro.core.javaagent import instrument_program
from repro.heap.layout import Kind
from repro.jvm import JProgram, Machine, MachineConfig, MethodBuilder

from tests.jvm.helpers import counting_loop


def two_sites_program():
    """Site A allocates 50 small objects; site B allocates 5 big ones."""
    p = JProgram()
    b = MethodBuilder("App", "main", first_line=1)
    counting_loop(b, 50, 0,
                  lambda b: b.line(10).iconst(8).newarray(Kind.INT)
                  .store(1).line(1))
    counting_loop(b, 5, 0,
                  lambda b: b.line(20).iconst(4096).newarray(Kind.INT)
                  .store(1).line(1))
    b.ret()
    p.add_builder(b)
    p.add_entry("main")
    return p


def run_profiled(charge_overhead=True):
    program = instrument_program(two_sites_program())
    machine = Machine(program, MachineConfig(heap_size=4 * 1024 * 1024))
    profiler = AllocFrequencyProfiler(charge_overhead=charge_overhead)
    profiler.attach(machine)
    result = machine.run()
    return profiler, machine, result


class TestAllocFrequency:
    def test_counts_every_allocation(self):
        profiler, _, _ = run_profiled()
        assert profiler.total_allocations == 55

    def test_ranking_is_by_count_not_importance(self):
        # The misleading ranking from the paper's motivation: the
        # frequently allocated *small* object ranks first.
        profiler, _, _ = run_profiled()
        result = profiler.analyze()
        top = result.top_sites(2)
        assert top[0].count == 50
        assert top[0].path[-1].line == 10
        assert top[1].count == 5
        assert top[1].path[-1].line == 20

    def test_bytes_tracked(self):
        profiler, _, _ = run_profiled()
        result = profiler.analyze()
        big_site = next(s for s in result.sites if s.path[-1].line == 20)
        assert big_site.bytes >= 5 * 4096 * 8

    def test_type_names_tracked(self):
        profiler, _, _ = run_profiled()
        result = profiler.analyze()
        assert all("int[]" in s.type_names for s in result.sites)

    def test_instrumentation_overhead_is_heavy(self):
        _, _, with_overhead = run_profiled(charge_overhead=True)
        _, _, without = run_profiled(charge_overhead=False)
        assert with_overhead.wall_cycles > without.wall_cycles
        extra = with_overhead.wall_cycles - without.wall_cycles
        assert extra == 55 * AllocFrequencyProfiler.CYCLES_PER_ALLOCATION
