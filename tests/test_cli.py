"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "batik-makeroom" in out
        assert "scimark-fft" in out

    def test_prefix_filter(self, capsys):
        assert main(["list", "acc-"]) == 0
        out = capsys.readouterr().out
        assert "acc-luindex" in out
        assert "batik" not in out

    def test_no_match_is_error(self, capsys):
        assert main(["list", "zzz"]) == 1


class TestProfile:
    def test_profile_prints_report(self, capsys):
        assert main(["profile", "montecarlo", "--period", "64"]) == 0
        out = capsys.readouterr().out
        assert "DJXPerf object-centric profile" in out
        assert "RatePath.run:205" in out

    def test_profile_writes_html(self, capsys, tmp_path):
        path = str(tmp_path / "r.html")
        assert main(["profile", "montecarlo", "--period", "64",
                     "--html", path]) == 0
        with open(path) as fp:
            assert "RatePath.run:205" in fp.read()

    def test_unknown_workload_is_error(self, capsys):
        assert main(["profile", "nope"]) == 2
        assert "error" in capsys.readouterr().err


class TestSpeedup:
    def test_speedup_output(self, capsys):
        assert main(["speedup", "montecarlo"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "tiled" in out


class TestOverhead:
    def test_overhead_output(self, capsys):
        assert main(["overhead", "compress", "--period", "64"]) == 0
        out = capsys.readouterr().out
        assert "runtime overhead" in out
        assert "memory overhead" in out


class TestAdvise:
    def test_advise_output(self, capsys):
        assert main(["advise", "montecarlo", "--period", "64"]) == 0
        out = capsys.readouterr().out
        assert "improve-access-pattern" in out


class TestReplay:
    def test_profile_trace_then_replay(self, capsys, tmp_path):
        trace = str(tmp_path / "mc.trace.jsonl.gz")
        assert main(["profile", "montecarlo", "--period", "64",
                     "--trace", trace]) == 0
        live_out = capsys.readouterr().out
        assert "observation trace written" in live_out
        assert main(["replay", trace, "--period", "64"]) == 0
        replay_out = capsys.readouterr().out
        assert "RatePath.run:205" in replay_out

    def test_replay_resample_needs_access_trace(self, capsys, tmp_path):
        trace = str(tmp_path / "mc.trace.jsonl.gz")
        assert main(["profile", "montecarlo", "--period", "64",
                     "--trace", trace]) == 0
        assert main(["replay", trace, "--period", "32",
                     "--resample"]) == 2
        err = capsys.readouterr().err
        assert "include_accesses" in err

    def test_replay_resample_with_access_trace(self, capsys, tmp_path):
        trace = str(tmp_path / "mc.trace.jsonl.gz")
        assert main(["profile", "montecarlo", "--period", "64",
                     "--trace", trace, "--trace-accesses"]) == 0
        capsys.readouterr()
        assert main(["replay", trace, "--period", "32",
                     "--resample"]) == 0
        assert "DJXPerf object-centric profile" in capsys.readouterr().out


class TestFamily:
    def test_profile_replica_family(self, capsys):
        assert main(["profile", "dup-strings", "--family", "replica",
                     "--period", "64"]) == 0
        assert "DupStrings.run:100" in capsys.readouterr().out

    def test_profile_trace_then_family_replay(self, capsys, tmp_path):
        trace = str(tmp_path / "ds.trace.jsonl.gz")
        assert main(["profile", "dead-stores", "--family", "redundancy",
                     "--period", "64", "--trace", trace]) == 0
        assert "DeadStores.run:300" in capsys.readouterr().out
        assert main(["replay", trace, "--family", "redundancy",
                     "--period", "64"]) == 0
        assert "DeadStores.run:300" in capsys.readouterr().out

    def test_family_replay_rejects_resample(self, capsys, tmp_path):
        trace = str(tmp_path / "dt.trace.jsonl.gz")
        assert main(["profile", "dup-tables", "--family", "replica",
                     "--period", "64", "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["replay", trace, "--family", "replica",
                     "--resample"]) == 2
        assert "DJXPerf-only" in capsys.readouterr().err


class TestSuite:
    def test_suite_table(self, capsys):
        assert main(["suite", "--suite", "specjvm", "--jobs", "1",
                     "--period", "64"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out
        assert "runtime" in out

    def test_suite_parallel_jobs(self, capsys):
        assert main(["suite", "--suite", "specjvm", "--jobs", "2",
                     "--period", "64"]) == 0
        assert "xml-transform" in capsys.readouterr().out


class TestBench:
    def test_workloads_glob_filter(self, capsys):
        assert main(["bench", "--workloads", "cryp*", "--repeat", "1",
                     "--no-legacy"]) == 0
        out = capsys.readouterr().out
        assert "crypto" in out
        assert "AGGREGATE" in out
        assert "avrora" not in out

    def test_workloads_glob_filters_explicit_names(self, capsys):
        assert main(["bench", "crypto", "avrora", "--workloads", "av*",
                     "--repeat", "1", "--no-legacy"]) == 0
        out = capsys.readouterr().out
        assert "avrora" in out
        assert "crypto" not in out

    def test_workloads_glob_no_match_is_error(self, capsys):
        assert main(["bench", "--workloads", "zzz-*"]) == 2
        assert "no workloads match" in capsys.readouterr().err

    def test_profiled_arm(self, capsys):
        assert main(["bench", "--workloads", "crypto", "--repeat", "1",
                     "--no-legacy", "--profiled"]) == 0
        assert "prof" in capsys.readouterr().out

    def test_store_arm(self, capsys):
        assert main(["bench", "--workloads", "crypto", "--repeat", "1",
                     "--no-legacy", "--store-arm"]) == 0
        assert "store" in capsys.readouterr().out


class TestServe:
    """The serving layer: submit -> serve --drain -> history/regress."""

    def serve_args(self, tmp_path):
        return ["--spool", str(tmp_path / "spool")], \
               ["--store", str(tmp_path / "store.sqlite")]

    def test_submit_then_drain_then_history(self, capsys, tmp_path):
        spool, store = self.serve_args(tmp_path)
        assert main(["submit", "objectlayout", "--period", "32",
                     *spool]) == 0
        assert "submitted" in capsys.readouterr().out
        assert main(["serve", "--drain", *spool, *store]) == 0
        assert "drained 1 job(s)" in capsys.readouterr().out
        assert main(["history", *store]) == 0
        out = capsys.readouterr().out
        assert "objectlayout/baseline" in out
        assert "1 profile(s)" in out

    def test_history_json_and_empty(self, capsys, tmp_path):
        _, store = self.serve_args(tmp_path)
        assert main(["history", "--json", *store]) == 0
        assert capsys.readouterr().out.strip() == "[]"
        assert main(["history", *store]) == 1

    def test_repeat_submission_served_from_store(self, capsys, tmp_path):
        spool, store = self.serve_args(tmp_path)
        for _ in range(2):
            assert main(["submit", "objectlayout", "--period", "32",
                         *spool]) == 0
            assert main(["serve", "--drain", *spool, *store]) == 0
        assert "1 served from store" in capsys.readouterr().out

    def test_regress_degraded_variant_names_site(self, capsys, tmp_path):
        spool, store = self.serve_args(tmp_path)
        for variant in ("hoisted", "baseline"):
            assert main(["submit", "batik-makeroom", "--variant", variant,
                         "--period", "32", *spool]) == 0
        assert main(["serve", "--drain", *spool, *store]) == 0
        capsys.readouterr()
        code = main(["regress", "batik-makeroom", "--variant", "baseline",
                     "--baseline-variant", "hoisted", *store])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out
        assert "makeRoom" in out

    def test_regress_no_baseline_exit_code(self, capsys, tmp_path):
        spool, store = self.serve_args(tmp_path)
        assert main(["submit", "objectlayout", "--period", "32",
                     *spool]) == 0
        assert main(["serve", "--drain", *spool, *store]) == 0
        capsys.readouterr()
        assert main(["regress", "objectlayout", *store]) == 3
        assert "NO-BASELINE" in capsys.readouterr().out

    def test_regress_same_key_repeat_clean(self, capsys, tmp_path):
        spool, store = self.serve_args(tmp_path)
        for _ in range(2):
            assert main(["submit", "objectlayout", "--period", "32",
                         "--force", *spool]) == 0
            assert main(["serve", "--drain", *spool, *store]) == 0
        capsys.readouterr()
        assert main(["regress", "objectlayout", *store]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_regress_json_output(self, capsys, tmp_path):
        import json

        spool, store = self.serve_args(tmp_path)
        assert main(["submit", "objectlayout", "--period", "32",
                     *spool]) == 0
        assert main(["serve", "--drain", *spool, *store]) == 0
        capsys.readouterr()
        assert main(["regress", "objectlayout", "--json", *store]) == 3
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["status"] == "no-baseline"

    def test_submit_unknown_workload_fails_fast(self, capsys, tmp_path):
        spool, _ = self.serve_args(tmp_path)
        assert main(["submit", "no-such-workload", *spool]) == 2
        assert "error" in capsys.readouterr().err

    def test_regress_empty_store_is_error(self, capsys, tmp_path):
        _, store = self.serve_args(tmp_path)
        assert main(["regress", "objectlayout", *store]) == 2
        assert "error" in capsys.readouterr().err


class TestOptimize:
    def test_accepted_rewrite_exits_zero(self, capsys):
        assert main(["optimize", "unsized-growth"]) == 0
        out = capsys.readouterr().out
        assert "ACCEPTED" in out
        assert "presize" in out
        assert "identical observables" in out

    def test_json_verdict(self, capsys):
        import json

        assert main(["optimize", "unsized-growth", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["status"] == "accepted"
        assert data["speedup"] > 1.0

    def test_rejected_rewrite_exits_one(self, capsys):
        # Presizing down to 2 slots can't improve anything; the engine
        # must roll the rewrite back and say so.
        assert main(["optimize", "unsized-growth", "--capacity", "2"]) \
            == 1
        out = capsys.readouterr().out
        assert "REJECTED" in out
        assert "rolled back" in out

    def test_family_selects_redundancy_transform(self, capsys):
        assert main(["optimize", "redundant-fill",
                     "--family", "redundancy"]) == 0
        assert "eliminate-dead-stores" in capsys.readouterr().out

    def test_bad_family_transform_combo_is_error(self, capsys):
        assert main(["optimize", "redundant-fill",
                     "--family", "redundancy",
                     "--transform", "presize"]) == 2
        assert "not applicable" in capsys.readouterr().err


class TestSubmitOptimize:
    def test_submit_optimize_shorthand(self, capsys, tmp_path):
        spool = str(tmp_path / "spool")
        assert main(["submit", "unsized-growth", "--optimize",
                     "--spool", spool]) == 0
        out = capsys.readouterr().out
        assert "optimize unsized-growth" in out
        assert "threshold 0" in out

    def test_meta_flags_rejected_on_profile_jobs(self, capsys, tmp_path):
        spool = str(tmp_path / "spool")
        assert main(["submit", "unsized-growth", "--transform",
                     "presize", "--spool", spool]) == 2
        assert "only applies to optimize" in capsys.readouterr().err

    def test_bad_combo_rejected_before_enqueue(self, capsys, tmp_path):
        spool = str(tmp_path / "spool")
        assert main(["submit", "unsized-growth", "--optimize",
                     "--family", "redundancy", "--transform", "presize",
                     "--spool", spool]) == 2
        assert "not applicable" in capsys.readouterr().err
        # Nothing was enqueued: the daemon never sees the bad job.
        from repro.serve.queue import SpoolQueue

        assert SpoolQueue(spool).pending_count() == 0
