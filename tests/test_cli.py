"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "batik-makeroom" in out
        assert "scimark-fft" in out

    def test_prefix_filter(self, capsys):
        assert main(["list", "acc-"]) == 0
        out = capsys.readouterr().out
        assert "acc-luindex" in out
        assert "batik" not in out

    def test_no_match_is_error(self, capsys):
        assert main(["list", "zzz"]) == 1


class TestProfile:
    def test_profile_prints_report(self, capsys):
        assert main(["profile", "montecarlo", "--period", "64"]) == 0
        out = capsys.readouterr().out
        assert "DJXPerf object-centric profile" in out
        assert "RatePath.run:205" in out

    def test_profile_writes_html(self, capsys, tmp_path):
        path = str(tmp_path / "r.html")
        assert main(["profile", "montecarlo", "--period", "64",
                     "--html", path]) == 0
        with open(path) as fp:
            assert "RatePath.run:205" in fp.read()

    def test_unknown_workload_is_error(self, capsys):
        assert main(["profile", "nope"]) == 2
        assert "error" in capsys.readouterr().err


class TestSpeedup:
    def test_speedup_output(self, capsys):
        assert main(["speedup", "montecarlo"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "tiled" in out


class TestOverhead:
    def test_overhead_output(self, capsys):
        assert main(["overhead", "compress", "--period", "64"]) == 0
        out = capsys.readouterr().out
        assert "runtime overhead" in out
        assert "memory overhead" in out


class TestAdvise:
    def test_advise_output(self, capsys):
        assert main(["advise", "montecarlo", "--period", "64"]) == 0
        out = capsys.readouterr().out
        assert "improve-access-pattern" in out
