"""Batched bulk walks vs per-line accesses: bit-identical state.

:meth:`MemoryHierarchy.touch_range` plans its walk through
:mod:`repro.memsys.batch` (per-page line runs, closed-form eviction
arithmetic) instead of walking line by line.  The refactor's contract
is *bit-identical observable state*: for any range, write mix and
revisit pattern, a batched walk must leave every cache set's
OrderedDict (contents, LRU order, dirty bits), every stats object, the
TLB's recency order, the page table and the summed latency exactly
where the equivalent ``access(cpu, addr, 8, is_write)`` loop would —
and, when counting, produce exactly the outcome-combo histogram the
per-line AccessResults would classify to.

The twin-hierarchy property test drives both engines through the same
walk schedule on identical geometries and compares full state
snapshots after every walk.  The whole suite runs twice: once with the
planner's numpy path available and once forced onto the pure-Python
fallback (the CI matrix additionally runs the entire test suite with
``REPRO_NO_NUMPY=1``).
"""

import pytest

from repro.memsys import HierarchyConfig, MemoryHierarchy, NumaTopology
from repro.memsys import batch
from repro.pmu.events import NUM_COMBOS, combo_index


def small_config(**overrides):
    base = dict(l1_size=1024, l1_assoc=2,
                l2_size=4096, l2_assoc=4,
                l3_size=16 * 1024, l3_assoc=4,
                tlb_entries=4, page_size=4096)
    base.update(overrides)
    return HierarchyConfig(**base)


def make_twins(cfg=None, num_nodes=2, cpus_per_node=2):
    cfg = cfg or small_config()
    return (MemoryHierarchy(NumaTopology(num_nodes, cpus_per_node), cfg),
            MemoryHierarchy(NumaTopology(num_nodes, cpus_per_node), cfg))


def cache_state(cache):
    """Stats plus every set's full (line, dirty) sequence in LRU order."""
    return (vars(cache.stats),
            [list(cset.items()) for cset in cache._sets])


def snapshot(h):
    """Every observable the equivalence contract covers."""
    return {
        "l1": [cache_state(c) for c in h.l1],
        "l2": [cache_state(c) for c in h.l2],
        "l3": [cache_state(c) for c in h.l3],
        "tlb": [(vars(t.stats), list(t.page_map().items()))
                for t in h.tlb],
        "pt": (vars(h.page_table.stats), dict(h.page_table._page_node)),
        "stats": vars(h.stats),
    }


def reference_walk(h, cpu, start, end, is_write):
    """The per-line loop the batched walk must be indistinguishable
    from; returns (total latency, dense combo histogram)."""
    combos = [0] * NUM_COMBOS
    total = 0
    line = h.config.line_size
    addr = start
    while addr < end:
        r = h.access(cpu, addr, 8, is_write)
        total += r.latency
        combos[combo_index(r.level, r.tlb_misses > 0,
                           r.is_write, r.remote)] += 1
        addr += line
    return total, combos


#: (label, [(cpu, start, n_lines, is_write), ...]) walk schedules.
#: Line size is 64, page size 4096 (64 lines/page) throughout.
SCHEDULES = [
    ("zeroing-cold", [
        # A fresh allocation's zeroing walk: everything misses to DRAM.
        (0, 0x10000, 256, True),
    ]),
    ("warm-restream", [
        # Second pass re-streams entirely from L1 (16 lines fit).
        (0, 0x2000, 16, True),
        (0, 0x2000, 16, False),
        (0, 0x2000, 16, True),
    ]),
    ("page-straddle", [
        # Start mid-page so runs split across page boundaries.
        (0, 0x10000 + 62 * 64, 70, False),
        (0, 0x10000 + 63 * 64, 3, True),
    ]),
    ("set-overwhelm", [
        # 256 lines through a 16-set 2-way L1: every set overwhelmed,
        # exercising the closed-form eviction plan's skip_new arm.
        (0, 0x40000, 256, False),
        (0, 0x40000, 256, True),
    ]),
    ("revisit-interleave", [
        # Overlapping revisits with flipped write classes and a second
        # CPU pulling shared lines through its own private levels.
        (0, 0x8000, 32, False),
        (0, 0x8400, 32, True),
        (1, 0x8000, 48, False),
        (0, 0x8000, 8, True),
    ]),
    ("remote-node", [
        # First touch places pages on node 0; cpu 2 (node 1) then
        # streams them remotely.
        (0, 0x100000, 128, True),
        (2, 0x100000, 128, False),
    ]),
    ("tlb-thrash", [
        # 8 pages through a 4-entry TLB, twice: eviction + re-fill
        # order must match per-line walks exactly.
        (0, 0x200000, 8 * 64, False),
        (0, 0x200000, 8 * 64, False),
    ]),
]


@pytest.fixture(params=["planner-numpy", "planner-pure"])
def planner(request, monkeypatch):
    """Run every test against both planner implementations."""
    if request.param == "planner-pure":
        monkeypatch.setattr(batch, "HAVE_NUMPY", False)
    elif not batch.HAVE_NUMPY:
        pytest.skip("numpy not available")
    # Make the numpy path actually engage on test-sized ranges.
    monkeypatch.setattr(batch, "_NUMPY_MIN_LINES", 4)
    return request.param


class TestBatchedWalkEquivalence:
    @pytest.mark.parametrize(
        "label,walks", SCHEDULES, ids=[s[0] for s in SCHEDULES])
    def test_state_identical_to_per_line_loop(self, planner, label, walks):
        batched, looped = make_twins()
        line = batched.config.line_size
        for cpu, start, n_lines, is_write in walks:
            end = start + n_lines * line
            combos = [0] * NUM_COMBOS
            got = batched.touch_range(cpu, start, end, is_write,
                                      combo_counts=combos)
            assert got != -1, f"{label}: fused preconditions failed"
            want, want_combos = reference_walk(looped, cpu, start, end,
                                               is_write)
            assert got == want, f"{label}: latency diverged"
            assert combos == want_combos, f"{label}: combos diverged"
            assert snapshot(batched) == snapshot(looped), \
                f"{label}: state diverged after walk {cpu, start, n_lines}"

    def test_interleaved_single_accesses_see_same_world(self, planner):
        # After a bulk walk, individual accesses (the interpreter's
        # normal traffic) must observe identical hit/miss behaviour.
        batched, looped = make_twins()
        batched.touch_range(0, 0x3000, 0x3000 + 40 * 64, True)
        reference_walk(looped, 0, 0x3000, 0x3000 + 40 * 64, True)
        for addr in (0x3000, 0x3000 + 39 * 64, 0x3000 + 17 * 64, 0x9000):
            rb = batched.access(0, addr, 8, False)
            rl = looped.access(0, addr, 8, False)
            assert (rb.level, rb.latency, rb.tlb_misses, rb.remote) == \
                (rl.level, rl.latency, rl.tlb_misses, rl.remote)
        assert snapshot(batched) == snapshot(looped)

    def test_unaligned_start_falls_back_identically(self, planner):
        # A start whose 8-byte access straddles a line boundary fails
        # the fused preconditions: counting callers get -1 *before any
        # state changes*, non-counting callers get the per-line path.
        batched, looped = make_twins()
        start, end = 0x5000 + 60, 0x5000 + 60 + 6 * 64
        before = snapshot(batched)
        assert batched.touch_range(0, start, end, False,
                                   combo_counts=[0] * NUM_COMBOS) == -1
        assert snapshot(batched) == before
        got = batched.touch_range(0, start, end, False)
        want, _ = reference_walk(looped, 0, start, end, False)
        assert got == want
        assert snapshot(batched) == snapshot(looped)


class TestPlannerPrimitives:
    def test_page_runs_matches_sequential_walk(self, planner):
        for start, end, line, page in [
            (0, 4096 * 3, 64, 4096),
            (100, 9000, 64, 4096),
            (4096 - 64, 4096 + 64, 64, 4096),
            (8192, 8192 + 64 * 300, 64, 4096),
            (0, 64, 64, 4096),
        ]:
            runs = batch.page_runs(start, end, line, page)
            # Rebuild the line-address stream and check it equals the
            # sequential addr += line loop, with every run one page.
            stream = []
            for first, n in runs:
                assert n > 0
                addrs = [first + k * line for k in range(n)]
                assert len({a // page for a in addrs}) == 1
                stream.extend(addrs)
            expect = list(range(start, end, line))
            assert stream == expect, (start, end)

    def test_numpy_and_pure_planners_agree(self):
        if not batch.HAVE_NUMPY:
            pytest.skip("numpy not available")
        cases = [(0, 4096 * 5, 64, 4096), (123, 50000, 64, 4096),
                 (4000, 4200, 64, 4096)]
        for case in cases:
            with_np = batch.page_runs(*case)
            saved = batch.HAVE_NUMPY
            try:
                batch.HAVE_NUMPY = False
                pure = batch.page_runs(*case)
            finally:
                batch.HAVE_NUMPY = saved
            assert with_np == pure, case

    @pytest.mark.parametrize("occupied,incoming,assoc", [
        (0, 0, 4), (0, 4, 4), (2, 1, 4), (2, 2, 4), (4, 4, 4),
        (3, 10, 4), (0, 9, 2), (1, 1, 1), (8, 3, 8), (2, 100, 2),
    ])
    def test_eviction_plan_matches_sequential_inserts(
            self, occupied, incoming, assoc):
        # Simulate the LRU inserts the plan summarises.
        from collections import OrderedDict
        cset = OrderedDict((f"old{i}", False) for i in range(occupied))
        evictions = pop_existing = 0
        inserted = []
        for i in range(incoming):
            if len(cset) >= assoc:
                victim, _ = cset.popitem(last=False)
                evictions += 1
                if victim.startswith("old"):
                    pop_existing += 1
                else:
                    inserted.remove(victim)
            cset[f"new{i}"] = False
            inserted.append(f"new{i}")
        want = (evictions, pop_existing,
                evictions - pop_existing)
        assert batch.eviction_plan(occupied, incoming, assoc) == want
        # skip_new really is the count of incoming lines that did not
        # survive the fill.
        assert incoming - len(inserted) == want[2]
