"""Unit tests for the TLB model."""

import pytest

from repro.memsys.tlb import Tlb


class TestTlb:
    def test_cold_miss_then_hit(self):
        t = Tlb(entries=4)
        assert t.access(0x1000) is False
        assert t.access(0x1000) is True

    def test_same_page_different_offsets_hit(self):
        t = Tlb(entries=4, page_size=4096)
        t.access(0x1000)
        assert t.access(0x1FFF) is True
        assert t.access(0x2000) is False

    def test_lru_eviction(self):
        t = Tlb(entries=2, page_size=4096)
        t.access(0x0000)
        t.access(0x1000)
        t.access(0x0000)  # refresh page 0
        t.access(0x2000)  # evicts page 1
        assert t.access(0x0000) is True
        assert t.access(0x1000) is False

    def test_capacity_bound(self):
        t = Tlb(entries=8)
        for i in range(100):
            t.access(i * 4096)
        assert t.occupancy() == 8

    def test_flush(self):
        t = Tlb(entries=4)
        t.access(0x1000)
        t.flush()
        assert t.occupancy() == 0
        assert t.access(0x1000) is False

    def test_stats(self):
        t = Tlb(entries=4)
        t.access(0x1000)
        t.access(0x1000)
        t.access(0x2000)
        assert t.stats.misses == 2
        assert t.stats.hits == 1
        assert t.stats.miss_ratio == pytest.approx(2 / 3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Tlb(entries=0)
        with pytest.raises(ValueError):
            Tlb(entries=4, page_size=1000)
