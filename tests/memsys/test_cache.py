"""Unit tests for the set-associative cache model."""

import pytest

from repro.memsys.cache import Cache, lines_spanned


def make_cache(size=1024, assoc=2, line=64):
    return Cache("test", size, assoc, line)


class TestConstruction:
    def test_geometry(self):
        c = make_cache(size=1024, assoc=2, line=64)
        assert c.num_sets == 8

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            Cache("bad", 1024, 2, line_size=48)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, 2, line_size=64)

    def test_paper_l1_geometry(self):
        # 32KB, 8-way, 64B lines -> 64 sets (the paper's Broadwell L1d).
        c = Cache("L1d", 32 * 1024, 8, 64)
        assert c.num_sets == 64


class TestAccess:
    def test_cold_miss_then_hit_after_fill(self):
        c = make_cache()
        assert c.access(0x100, is_write=False) is False
        c.fill(0x100)
        assert c.access(0x100, is_write=False) is True

    def test_miss_does_not_implicitly_fill(self):
        c = make_cache()
        c.access(0x100, is_write=False)
        assert c.access(0x100, is_write=False) is False

    def test_same_line_offsets_share_residency(self):
        c = make_cache(line=64)
        c.fill(0x100)
        assert c.access(0x100 + 63, is_write=False) is True
        assert c.access(0x100 + 64, is_write=False) is False

    def test_stats_track_hits_and_misses(self):
        c = make_cache()
        c.access(0x0, False)
        c.fill(0x0)
        c.access(0x0, False)
        c.access(0x0, False)
        assert c.stats.misses == 1
        assert c.stats.hits == 2
        assert c.stats.miss_ratio == pytest.approx(1 / 3)

    def test_miss_ratio_zero_without_accesses(self):
        assert make_cache().stats.miss_ratio == 0.0


class TestLru:
    def test_eviction_is_lru(self):
        # 2-way: fill two lines mapping to the same set, then a third.
        c = make_cache(size=1024, assoc=2, line=64)
        set_stride = c.num_sets * 64
        a, b, d = 0x0, set_stride, 2 * set_stride
        c.fill(a)
        c.fill(b)
        victim = c.fill(d)
        assert victim is not None
        assert victim.line_addr == a  # a was least recently used

    def test_access_refreshes_recency(self):
        c = make_cache(size=1024, assoc=2, line=64)
        set_stride = c.num_sets * 64
        a, b, d = 0x0, set_stride, 2 * set_stride
        c.fill(a)
        c.fill(b)
        c.access(a, False)  # refresh a; b becomes LRU
        victim = c.fill(d)
        assert victim.line_addr == b

    def test_dirty_eviction_counts_writeback(self):
        c = make_cache(size=1024, assoc=2, line=64)
        set_stride = c.num_sets * 64
        c.fill(0x0, dirty=True)
        c.fill(set_stride)
        victim = c.fill(2 * set_stride)
        assert victim.dirty is True
        assert c.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        c = make_cache(size=1024, assoc=2, line=64)
        set_stride = c.num_sets * 64
        c.fill(0x0)
        c.access(0x0, is_write=True)
        c.fill(set_stride)
        victim = c.fill(2 * set_stride)
        assert victim.dirty is True

    def test_refill_merges_dirty_bit(self):
        c = make_cache()
        c.fill(0x0, dirty=False)
        assert c.fill(0x0, dirty=True) is None
        set_stride = c.num_sets * 64
        c.fill(set_stride)
        victim = c.fill(2 * set_stride)
        assert victim.dirty is True


class TestInvalidateFlush:
    def test_invalidate_drops_line(self):
        c = make_cache()
        c.fill(0x40)
        assert c.invalidate(0x40) is True
        assert c.probe(0x40) is False

    def test_invalidate_missing_line_is_noop(self):
        c = make_cache()
        assert c.invalidate(0x40) is False

    def test_flush_empties_but_keeps_stats(self):
        c = make_cache()
        c.access(0x0, False)
        c.fill(0x0)
        c.flush()
        assert c.occupancy() == 0
        assert c.stats.misses == 1

    def test_occupancy_and_resident_lines(self):
        c = make_cache()
        c.fill(0x0)
        c.fill(0x40)
        assert c.occupancy() == 2
        assert sorted(c.resident_lines()) == [0, 1]


class TestLinesSpanned:
    def test_single_line(self):
        assert lines_spanned(0x10, 8, 64) == [0x0]

    def test_straddles_boundary(self):
        assert lines_spanned(60, 8, 64) == [0, 64]

    def test_large_access(self):
        assert lines_spanned(0, 256, 64) == [0, 64, 128, 192]

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            lines_spanned(0, 0, 64)
