"""Unit tests for NUMA topology and page placement."""

import pytest

from repro.memsys.numa import NumaTopology, PageTable, PlacementPolicy


class TestTopology:
    def test_cpu_to_node_mapping(self):
        topo = NumaTopology(num_nodes=2, cpus_per_node=12)
        assert topo.node_of_cpu(0) == 0
        assert topo.node_of_cpu(11) == 0
        assert topo.node_of_cpu(12) == 1
        assert topo.node_of_cpu(23) == 1

    def test_cpus_of_node(self):
        topo = NumaTopology(num_nodes=2, cpus_per_node=4)
        assert topo.cpus_of_node(1) == [4, 5, 6, 7]

    def test_bounds_checked(self):
        topo = NumaTopology(num_nodes=2, cpus_per_node=4)
        with pytest.raises(ValueError):
            topo.node_of_cpu(8)
        with pytest.raises(ValueError):
            topo.cpus_of_node(2)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            NumaTopology(num_nodes=0)
        with pytest.raises(ValueError):
            NumaTopology(cpus_per_node=0)


def make_pt(num_nodes=2, cpus_per_node=4, page_size=4096):
    return PageTable(NumaTopology(num_nodes, cpus_per_node), page_size)


class TestFirstTouch:
    def test_first_touch_assigns_toucher_node(self):
        pt = make_pt()
        node = pt.touch(0x1000, cpu=5)  # cpu 5 is on node 1
        assert node == 1
        assert pt.node_of_address(0x1000) == 1

    def test_subsequent_touch_keeps_node(self):
        pt = make_pt()
        pt.touch(0x1000, cpu=5)
        assert pt.touch(0x1000, cpu=0) == 1  # still node 1

    def test_local_remote_accounting(self):
        pt = make_pt()
        pt.touch(0x1000, cpu=5)   # first touch: local
        pt.touch(0x1000, cpu=0)   # remote (node 0 cpu, node 1 page)
        pt.touch(0x1000, cpu=6)   # local (node 1 cpu)
        assert pt.stats.local_accesses == 2
        assert pt.stats.remote_accesses == 1
        assert pt.stats.remote_ratio == pytest.approx(1 / 3)


class TestInterleave:
    def test_interleave_round_robins_pages(self):
        pt = make_pt(num_nodes=2)
        pt.set_range_policy(0, 4 * 4096, PlacementPolicy.INTERLEAVE)
        nodes = [pt.node_of_address(i * 4096) for i in range(4)]
        assert nodes == [0, 1, 0, 1]

    def test_interleave_cursor_continues_across_ranges(self):
        pt = make_pt(num_nodes=2)
        pt.set_range_policy(0, 4096, PlacementPolicy.INTERLEAVE)
        pt.set_range_policy(0x10000, 4096, PlacementPolicy.INTERLEAVE)
        assert pt.node_of_address(0) == 0
        assert pt.node_of_address(0x10000) == 1

    def test_interleaved_pages_survive_touch(self):
        pt = make_pt()
        pt.set_range_policy(0, 2 * 4096, PlacementPolicy.INTERLEAVE)
        assert pt.touch(4096, cpu=0) == 1  # interleaving wins over first touch


class TestBind:
    def test_bind_pins_to_node(self):
        pt = make_pt()
        pt.set_range_policy(0x2000, 4096, PlacementPolicy.BIND, bind_node=1)
        assert pt.node_of_address(0x2000) == 1

    def test_bind_requires_node(self):
        pt = make_pt()
        with pytest.raises(ValueError):
            pt.set_range_policy(0, 4096, PlacementPolicy.BIND)

    def test_first_touch_policy_resets_assignment(self):
        pt = make_pt()
        pt.set_range_policy(0, 4096, PlacementPolicy.BIND, bind_node=1)
        pt.set_range_policy(0, 4096, PlacementPolicy.FIRST_TOUCH)
        assert pt.node_of_address(0) is None
        assert pt.touch(0, cpu=0) == 0


class TestMovePages:
    def test_query_untouched_returns_none(self):
        pt = make_pt()
        assert pt.move_pages([0x5000]) == [None]

    def test_query_returns_current_node(self):
        pt = make_pt()
        pt.touch(0x5000, cpu=5)
        assert pt.move_pages([0x5000]) == [1]

    def test_move_changes_node_and_reports_old(self):
        pt = make_pt()
        pt.touch(0x5000, cpu=0)
        old = pt.move_pages([0x5000], [1])
        assert old == [0]
        assert pt.node_of_address(0x5000) == 1
        assert pt.stats.pages_moved == 1

    def test_move_to_same_node_not_counted(self):
        pt = make_pt()
        pt.touch(0x5000, cpu=0)
        pt.move_pages([0x5000], [0])
        assert pt.stats.pages_moved == 0

    def test_move_validates_target(self):
        pt = make_pt(num_nodes=2)
        with pytest.raises(ValueError):
            pt.move_pages([0x0], [5])

    def test_length_mismatch_rejected(self):
        pt = make_pt()
        with pytest.raises(ValueError):
            pt.move_pages([0x0, 0x1000], [0])


class TestRanges:
    def test_pages_in_range(self):
        pt = make_pt()
        assert pt.pages_in_range(0, 4096) == [0]
        assert pt.pages_in_range(100, 4096) == [0, 1]
        assert pt.pages_in_range(4096, 8192) == [1, 2]

    def test_zero_size_range_rejected(self):
        pt = make_pt()
        with pytest.raises(ValueError):
            pt.pages_in_range(0, 0)
