"""Integration tests for the composed memory hierarchy."""

import pytest

from repro.memsys import (
    LEVEL_DRAM,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_L3,
    HierarchyConfig,
    LatencyModel,
    MemoryHierarchy,
    NumaTopology,
)


def small_hierarchy(num_nodes=2, cpus_per_node=2):
    """A hierarchy small enough to force evictions in tests."""
    cfg = HierarchyConfig(
        l1_size=1024, l1_assoc=2,
        l2_size=4096, l2_assoc=4,
        l3_size=16 * 1024, l3_assoc=4,
        tlb_entries=8)
    return MemoryHierarchy(NumaTopology(num_nodes, cpus_per_node), cfg)


class TestLevels:
    def test_cold_access_reaches_dram(self):
        h = MemoryHierarchy()
        assert h.access(0, 0x1000).level == LEVEL_DRAM

    def test_second_access_hits_l1(self):
        h = MemoryHierarchy()
        h.access(0, 0x1000)
        assert h.access(0, 0x1000).level == LEVEL_L1

    def test_l1_evicted_line_hits_l2(self):
        h = small_hierarchy()
        # L1: 1KB 2-way with 64B lines -> 8 sets; stride of 512B aliases.
        h.access(0, 0x0)
        h.access(0, 0x200)
        h.access(0, 0x400)  # evicts 0x0 from L1 (2-way)
        r = h.access(0, 0x0)
        assert r.level == LEVEL_L2

    def test_l3_hit_from_other_cpu_same_node(self):
        h = small_hierarchy()
        h.access(0, 0x1000)          # cpu 0 pulls the line into node-0 L3
        r = h.access(1, 0x1000)      # cpu 1 (same node): L1/L2 miss, L3 hit
        assert r.level == LEVEL_L3

    def test_other_node_does_not_share_l3(self):
        h = small_hierarchy()
        h.access(0, 0x1000)          # node 0
        r = h.access(2, 0x1000)      # cpu 2 is on node 1: misses to DRAM
        assert r.level == LEVEL_DRAM


class TestLatency:
    def test_latency_ordering(self):
        lat = LatencyModel()
        assert lat.l1_hit < lat.l2_hit < lat.l3_hit < lat.dram_local
        assert lat.dram_local < lat.dram_remote

    def test_l1_hit_latency(self):
        h = MemoryHierarchy()
        h.access(0, 0x1000)
        r = h.access(0, 0x1000)
        assert r.latency == h.config.latency.l1_hit

    def test_remote_dram_costs_more_than_local(self):
        h = small_hierarchy()
        # cpu 0 first-touches page -> node 0; remote access from node 1.
        local = h.access(0, 0x100000)
        h.flush_all()
        remote = h.access(2, 0x100000)
        # Strip the TLB penalty which both paid.
        tlb = h.config.latency.tlb_miss_penalty
        assert remote.latency - tlb == h.config.latency.dram_remote
        assert local.latency - tlb == h.config.latency.dram_local

    def test_tlb_miss_adds_penalty(self):
        h = MemoryHierarchy()
        r1 = h.access(0, 0x1000)
        assert r1.tlb_missed
        h.l1[0].invalidate(0x1000)
        h.l2[0].invalidate(0x1000)
        node = h.topology.node_of_cpu(0)
        h.l3[node].invalidate(0x1000)
        r2 = h.access(0, 0x1000)
        assert not r2.tlb_missed
        assert r1.latency - r2.latency == h.config.latency.tlb_miss_penalty


class TestNumaIntegration:
    def test_first_touch_is_local(self):
        h = small_hierarchy()
        r = h.access(3, 0x40000)   # cpu 3 -> node 1
        assert r.home_node == 1
        assert not r.remote

    def test_remote_flag_set_for_cross_node_access(self):
        h = small_hierarchy()
        h.access(0, 0x40000)       # first touch by node 0
        r = h.access(3, 0x40000)   # node 1 access
        assert r.home_node == 0
        assert r.remote

    def test_remote_flag_independent_of_cache_level(self):
        # The paper's NUMA detection (4.3) compares the page's node with
        # the sampling CPU's node regardless of where the access hit.
        h = small_hierarchy()
        h.access(0, 0x40000)
        h.access(3, 0x40000)
        r = h.access(3, 0x40000)   # now cached on cpu 3, still remote page
        assert r.level == LEVEL_L1
        assert r.remote


class TestSpanningAccesses:
    def test_access_spanning_two_lines_counts_both(self):
        h = MemoryHierarchy()
        r = h.access(0, 0x1000 + 60, size=8)
        assert r.lines == 2
        assert r.l1_misses == 2

    def test_spanning_latency_exceeds_single(self):
        h = MemoryHierarchy()
        single = h.access(0, 0x10000, size=8)
        h2 = MemoryHierarchy()
        double = h2.access(0, 0x10000 + 60, size=8)
        assert double.latency > single.latency

    def test_invalid_inputs(self):
        h = MemoryHierarchy()
        with pytest.raises(ValueError):
            h.access(999, 0x0)
        with pytest.raises(ValueError):
            h.access(0, -1)


class TestStats:
    def test_load_store_accounting(self):
        h = MemoryHierarchy()
        h.access(0, 0x0, is_write=False)
        h.access(0, 0x8, is_write=True)
        assert h.stats.loads == 1
        assert h.stats.stores == 1
        assert h.stats.accesses == 2

    def test_miss_summary_aggregates(self):
        h = MemoryHierarchy()
        h.access(0, 0x0)
        h.access(1, 0x10000)
        summary = h.miss_summary()
        assert summary["l1_misses"] == 2
        assert summary["l3_misses"] >= 1

    def test_flush_all_forces_remisses(self):
        h = MemoryHierarchy()
        h.access(0, 0x0)
        h.flush_all()
        assert h.access(0, 0x0).level == LEVEL_DRAM
