"""Integration tests for the composed memory hierarchy."""

import pytest

from repro.memsys import (
    LEVEL_DRAM,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_L3,
    HierarchyConfig,
    LatencyModel,
    MemoryHierarchy,
    NumaTopology,
)


def small_hierarchy(num_nodes=2, cpus_per_node=2):
    """A hierarchy small enough to force evictions in tests."""
    cfg = HierarchyConfig(
        l1_size=1024, l1_assoc=2,
        l2_size=4096, l2_assoc=4,
        l3_size=16 * 1024, l3_assoc=4,
        tlb_entries=8)
    return MemoryHierarchy(NumaTopology(num_nodes, cpus_per_node), cfg)


class TestLevels:
    def test_cold_access_reaches_dram(self):
        h = MemoryHierarchy()
        assert h.access(0, 0x1000).level == LEVEL_DRAM

    def test_second_access_hits_l1(self):
        h = MemoryHierarchy()
        h.access(0, 0x1000)
        assert h.access(0, 0x1000).level == LEVEL_L1

    def test_l1_evicted_line_hits_l2(self):
        h = small_hierarchy()
        # L1: 1KB 2-way with 64B lines -> 8 sets; stride of 512B aliases.
        h.access(0, 0x0)
        h.access(0, 0x200)
        h.access(0, 0x400)  # evicts 0x0 from L1 (2-way)
        r = h.access(0, 0x0)
        assert r.level == LEVEL_L2

    def test_l3_hit_from_other_cpu_same_node(self):
        h = small_hierarchy()
        h.access(0, 0x1000)          # cpu 0 pulls the line into node-0 L3
        r = h.access(1, 0x1000)      # cpu 1 (same node): L1/L2 miss, L3 hit
        assert r.level == LEVEL_L3

    def test_other_node_does_not_share_l3(self):
        h = small_hierarchy()
        h.access(0, 0x1000)          # node 0
        r = h.access(2, 0x1000)      # cpu 2 is on node 1: misses to DRAM
        assert r.level == LEVEL_DRAM


class TestLatency:
    def test_latency_ordering(self):
        lat = LatencyModel()
        assert lat.l1_hit < lat.l2_hit < lat.l3_hit < lat.dram_local
        assert lat.dram_local < lat.dram_remote

    def test_l1_hit_latency(self):
        h = MemoryHierarchy()
        h.access(0, 0x1000)
        r = h.access(0, 0x1000)
        assert r.latency == h.config.latency.l1_hit

    def test_remote_dram_costs_more_than_local(self):
        h = small_hierarchy()
        # cpu 0 first-touches page -> node 0; remote access from node 1.
        local = h.access(0, 0x100000)
        h.flush_all()
        remote = h.access(2, 0x100000)
        # Strip the TLB penalty which both paid.
        tlb = h.config.latency.tlb_miss_penalty
        assert remote.latency - tlb == h.config.latency.dram_remote
        assert local.latency - tlb == h.config.latency.dram_local

    def test_tlb_miss_adds_penalty(self):
        h = MemoryHierarchy()
        r1 = h.access(0, 0x1000)
        assert r1.tlb_missed
        h.l1[0].invalidate(0x1000)
        h.l2[0].invalidate(0x1000)
        node = h.topology.node_of_cpu(0)
        h.l3[node].invalidate(0x1000)
        r2 = h.access(0, 0x1000)
        assert not r2.tlb_missed
        assert r1.latency - r2.latency == h.config.latency.tlb_miss_penalty


class TestNumaIntegration:
    def test_first_touch_is_local(self):
        h = small_hierarchy()
        r = h.access(3, 0x40000)   # cpu 3 -> node 1
        assert r.home_node == 1
        assert not r.remote

    def test_remote_flag_set_for_cross_node_access(self):
        h = small_hierarchy()
        h.access(0, 0x40000)       # first touch by node 0
        r = h.access(3, 0x40000)   # node 1 access
        assert r.home_node == 0
        assert r.remote

    def test_remote_flag_independent_of_cache_level(self):
        # The paper's NUMA detection (4.3) compares the page's node with
        # the sampling CPU's node regardless of where the access hit.
        h = small_hierarchy()
        h.access(0, 0x40000)
        h.access(3, 0x40000)
        r = h.access(3, 0x40000)   # now cached on cpu 3, still remote page
        assert r.level == LEVEL_L1
        assert r.remote


class TestSpanningAccesses:
    def test_access_spanning_two_lines_counts_both(self):
        h = MemoryHierarchy()
        r = h.access(0, 0x1000 + 60, size=8)
        assert r.lines == 2
        assert r.l1_misses == 2

    def test_spanning_latency_exceeds_single(self):
        h = MemoryHierarchy()
        single = h.access(0, 0x10000, size=8)
        h2 = MemoryHierarchy()
        double = h2.access(0, 0x10000 + 60, size=8)
        assert double.latency > single.latency

    def test_invalid_inputs(self):
        h = MemoryHierarchy()
        with pytest.raises(ValueError):
            h.access(999, 0x0)
        with pytest.raises(ValueError):
            h.access(0, -1)


class TestStats:
    def test_load_store_accounting(self):
        h = MemoryHierarchy()
        h.access(0, 0x0, is_write=False)
        h.access(0, 0x8, is_write=True)
        assert h.stats.loads == 1
        assert h.stats.stores == 1
        assert h.stats.accesses == 2

    def test_miss_summary_aggregates(self):
        h = MemoryHierarchy()
        h.access(0, 0x0)
        h.access(1, 0x10000)
        summary = h.miss_summary()
        assert summary["l1_misses"] == 2
        assert summary["l3_misses"] >= 1

    def test_flush_all_forces_remisses(self):
        h = MemoryHierarchy()
        h.access(0, 0x0)
        h.flush_all()
        assert h.access(0, 0x0).level == LEVEL_DRAM


class TestPageStraddle:
    """An access spanning a page boundary charges both pages' lookup
    paths (TLB lookup + page-table touch each) and counts both lines."""

    def test_cold_straddle_counts_both_pages(self):
        h = MemoryHierarchy()
        # 4 bytes before the page boundary, 4 after: 2 lines, 2 pages.
        r = h.access(0, 0x1000 - 4, size=8)
        assert r.lines == 2
        assert r.tlb_misses == 2
        assert r.l1_misses == 2
        assert h.page_table.touched_pages() == 2

    def test_warm_straddle_pays_no_tlb(self):
        h = MemoryHierarchy()
        h.access(0, 0x1000 - 4, size=8)
        r = h.access(0, 0x1000 - 4, size=8)
        assert r.lines == 2
        assert r.tlb_misses == 0
        assert r.level == LEVEL_L1

    def test_straddle_home_node_is_first_page(self):
        h = small_hierarchy()
        h.access(2, 0x1000)      # cpu 2 (node 1) first-touches page 1
        r = h.access(0, 0x1000 - 4, size=8)
        assert r.home_node == 0  # the first page, touched here by cpu 0
        assert not r.remote


def _copy_result(r):
    return {slot: getattr(r, slot) for slot in type(r).__slots__}


def _state_fingerprint(h):
    return {
        "stats": (h.stats.accesses, h.stats.loads, h.stats.stores,
                  h.stats.total_latency),
        "misses": h.miss_summary(),
        "numa": (h.page_table.stats.local_accesses,
                 h.page_table.stats.remote_accesses),
        "tlb_hits": [t.stats.hits for t in h.tlb],
        "l1_hits": [c.stats.hits for c in h.l1],
    }


class TestAccessHot:
    """access_hot must replay access()'s exact effects and results."""

    def _sequence(self):
        # Repeats (hot hits), conflict-evicting strides, a second CPU,
        # a remote page, and writes.
        seq = []
        for rep in range(3):
            for addr in (0x0, 0x40, 0x200, 0x0, 0x400, 0x0, 0x40000):
                seq.append((0, addr, rep % 2 == 0))
        seq.extend((2, addr, False) for addr in (0x0, 0x40000, 0x0))
        return seq

    def test_matches_access_results_and_state(self):
        ref = small_hierarchy()
        hot = small_hierarchy()
        for cpu, addr, is_write in self._sequence():
            expected = _copy_result(ref.access(cpu, addr, 8, is_write))
            got = _copy_result(hot.access_hot(cpu, addr, 8, is_write))
            assert got == expected
        assert _state_fingerprint(hot) == _state_fingerprint(ref)

    def test_eviction_falls_back_to_full_walk(self):
        h = small_hierarchy()
        h.access_hot(0, 0x0)
        # 2-way L1 with 512B of aliasing stride: 0x0 gets evicted.
        h.access_hot(0, 0x200)
        h.access_hot(0, 0x400)
        assert h.access_hot(0, 0x0).level == LEVEL_L2

    def test_flush_falls_back_to_dram(self):
        h = MemoryHierarchy()
        h.access_hot(0, 0x1000)
        h.access_hot(0, 0x1000)
        h.flush_all()
        assert h.access_hot(0, 0x1000).level == LEVEL_DRAM

    def test_page_migration_invalidates_hot_entries(self):
        h = small_hierarchy()
        h.access_hot(0, 0x1000)
        h.access_hot(0, 0x1000)        # cached, local
        h.page_table.move_pages([0x1000], [1])
        r = h.access_hot(0, 0x1000)
        assert r.home_node == 1
        assert r.remote

    def test_straddle_delegates_to_access(self):
        h = MemoryHierarchy()
        r = h.access_hot(0, 0x1000 - 4, size=8)
        assert r.lines == 2
        assert r.tlb_misses == 2

    def test_invalid_inputs_raise_like_access(self):
        h = MemoryHierarchy()
        with pytest.raises(ValueError):
            h.access_hot(999, 0x0)
        with pytest.raises(ValueError):
            h.access_hot(0, -1)


class TestTouchRange:
    """touch_range must equal a per-line access() loop: same latency sum,
    same statistics, same cache/TLB state afterwards."""

    def _loop(self, h, cpu, start, end, is_write):
        total = 0
        addr = start
        while addr < end:
            total += h.access(cpu, addr, 8, is_write).latency
            addr += h.config.line_size
        return total

    @pytest.mark.parametrize("is_write", [False, True])
    def test_matches_per_line_loop(self, is_write):
        ref = small_hierarchy()
        fused = small_hierarchy()
        # Crosses a page boundary and wraps the tiny TLB (8 entries).
        start, end = 0x800, 0x800 + 12 * 4096
        expected = self._loop(ref, 0, start, end, is_write)
        assert fused.touch_range(0, start, end, is_write) == expected
        assert _state_fingerprint(fused) == _state_fingerprint(ref)

    def test_warm_rerun_matches_too(self):
        ref = small_hierarchy()
        fused = small_hierarchy()
        span = (0x0, 0x2000)
        self._loop(ref, 0, *span, False)
        fused.touch_range(0, *span, False)
        assert self._loop(ref, 0, *span, False) == \
            fused.touch_range(0, *span, False)
        assert _state_fingerprint(fused) == _state_fingerprint(ref)

    def test_later_accesses_see_identical_state(self):
        ref = small_hierarchy()
        fused = small_hierarchy()
        self._loop(ref, 0, 0x0, 0x1800, True)
        fused.touch_range(0, 0x0, 0x1800, True)
        # The fused walk skips resident-set registration; the observable
        # hierarchy state must still be identical for any later access.
        for cpu, addr in ((0, 0x0), (0, 0x1000), (1, 0x40), (0, 0x5000)):
            assert _copy_result(ref.access(cpu, addr)) == \
                _copy_result(fused.access_hot(cpu, addr))
        assert _state_fingerprint(fused) == _state_fingerprint(ref)

    def test_unaligned_start_falls_back_consistently(self):
        ref = small_hierarchy()
        fused = small_hierarchy()
        start, end = 0x3c, 0x3c + 5 * 64   # 60: straddles its first line
        total = 0
        addr = start
        while addr < end:
            total += ref.access(0, addr, 8, False).latency
            addr += 64
        assert fused.touch_range(0, start, end, False) == total
        assert _state_fingerprint(fused) == _state_fingerprint(ref)

    def test_empty_range_is_a_noop(self):
        h = small_hierarchy()
        assert h.touch_range(0, 0x100, 0x100, False) == 0
        assert h.stats.accesses == 0
