"""Shared helpers for building small test programs."""

from repro.heap.layout import FieldSpec, JClass, Kind
from repro.jvm import JProgram, Machine, MachineConfig, MethodBuilder


def single_method_program(builder: MethodBuilder, classes=(),
                          statics=None) -> JProgram:
    """Wrap one built method as a runnable single-thread program."""
    program = JProgram("test")
    for cls in classes:
        program.add_class(cls)
    program.add_builder(builder)
    program.add_entry(builder.method_name)
    if statics:
        program.statics.update(statics)
    return program


def run_program(program: JProgram, config: MachineConfig = None) -> "tuple":
    """Run and return (machine, result)."""
    machine = Machine(program, config or MachineConfig())
    result = machine.run()
    return machine, result


def run_method(builder: MethodBuilder, classes=(), statics=None,
               config: MachineConfig = None):
    """Build + run one method; returns (machine, result)."""
    return run_program(single_method_program(builder, classes, statics),
                       config)


def counting_loop(b: MethodBuilder, count: int, counter_local: int,
                  body) -> MethodBuilder:
    """Emit ``for (i = 0; i < count; i++) body()`` into ``b``."""
    b.iconst(0).store(counter_local)
    top = b.new_label("top")
    end = b.new_label("end")
    b.place(top)
    b.load(counter_local).iconst(count).if_icmpge(end)
    body(b)
    b.iinc(counter_local, 1)
    b.goto(top)
    b.place(end)
    return b


def point_class() -> JClass:
    return JClass("Point", [FieldSpec("x"), FieldSpec("y")])


def node_class() -> JClass:
    return JClass("Node", [FieldSpec("next", Kind.REF),
                           FieldSpec("value")])
