"""Unit tests for interpreter semantics."""

import pytest

from repro.heap.layout import Kind
from repro.jvm import (
    MachineConfig,
    MethodBuilder,
    NullPointerError,
    TrapError,
)
from repro.jvm.interpreter import ArithmeticTrap

from tests.jvm.helpers import (
    counting_loop,
    point_class,
    run_method,
    run_program,
    single_method_program,
)


def result_of(builder, **kwargs):
    """Run a method whose last action prints its result; return output."""
    machine, result = run_method(builder, **kwargs)
    return result.output


def print_top(b):
    """Emit print-of-top-of-stack + return."""
    b.native("print", 1, False).ret()
    return b


class TestArithmetic:
    def test_add_sub_mul(self):
        b = MethodBuilder("C", "m")
        b.iconst(6).iconst(7).mul().iconst(2).sub().iconst(1).add()
        assert result_of(print_top(b)) == ["41"]

    def test_java_truncated_division(self):
        b = MethodBuilder("C", "m")
        b.iconst(-7).iconst(2).div()
        assert result_of(print_top(b)) == ["-3"]  # not floor (-4)

    def test_java_remainder_sign(self):
        b = MethodBuilder("C", "m")
        b.iconst(-7).iconst(2).rem()
        assert result_of(print_top(b)) == ["-1"]

    def test_division_by_zero_traps(self):
        b = MethodBuilder("C", "m")
        b.iconst(1).iconst(0).div().pop().ret()
        with pytest.raises(ArithmeticTrap):
            run_method(b)

    def test_float_arithmetic(self):
        b = MethodBuilder("C", "m")
        b.fconst(1.5).fconst(2.0).mul()
        assert result_of(print_top(b)) == ["3.0"]

    def test_conversions(self):
        b = MethodBuilder("C", "m")
        b.iconst(3).i2f().fconst(0.5).add().f2i()
        assert result_of(print_top(b)) == ["3"]

    def test_bit_ops(self):
        b = MethodBuilder("C", "m")
        b.iconst(0b1100).iconst(0b1010).band()
        assert result_of(print_top(b)) == [str(0b1000)]

    def test_shifts(self):
        b = MethodBuilder("C", "m")
        b.iconst(1).iconst(4).shl()
        assert result_of(print_top(b)) == ["16"]


class TestLocalsAndStack:
    def test_store_load_roundtrip(self):
        b = MethodBuilder("C", "m")
        b.iconst(99).store(3).load(3)
        assert result_of(print_top(b)) == ["99"]

    def test_iinc(self):
        b = MethodBuilder("C", "m")
        b.iconst(10).store(0).iinc(0, 5).load(0)
        assert result_of(print_top(b)) == ["15"]

    def test_dup_and_swap(self):
        b = MethodBuilder("C", "m")
        b.iconst(1).iconst(2).swap().sub()   # 2 - 1
        assert result_of(print_top(b)) == ["1"]

    def test_entry_args_populate_locals(self):
        b = MethodBuilder("C", "m", num_args=2)
        b.load(0).load(1).add()
        program = single_method_program(print_top(b))
        program.entry_points[0].args = (30, 12)
        _, result = run_program(program)
        assert result.output == ["42"]


class TestControlFlow:
    def test_loop_sums(self):
        b = MethodBuilder("C", "m")
        b.iconst(0).store(1)
        counting_loop(b, 10, 0,
                      lambda b: b.load(1).load(0).add().store(1))
        b.load(1)
        assert result_of(print_top(b)) == ["45"]

    def test_conditional_both_arms(self):
        for value, expected in ((0, "zero"), (1, "nonzero")):
            b = MethodBuilder("C", "m")
            nz = b.new_label()
            done = b.new_label()
            b.iconst(value).if_ne(nz)
            b.iconst(0).native("print_tag", 1, False, "zero").goto(done)
            b.place(nz)
            b.iconst(0).native("print_tag", 1, False, "nonzero")
            b.place(done)
            b.ret()
            program = single_method_program(b)
            from repro.jvm import Machine
            machine = Machine(program)
            machine.register_native(
                "print_tag",
                lambda call: call.machine.output.append(call.consts[0]))
            result = machine.run()
            assert result.output == [expected]

    def test_null_branches(self):
        b = MethodBuilder("C", "m")
        is_null = b.new_label()
        b.null().if_null(is_null)
        b.iconst(111).native("print", 1, False).ret()   # not taken
        b.place(is_null)
        b.iconst(777)
        assert result_of(print_top(b)) == ["777"]


class TestCalls:
    def test_invoke_passes_args_and_returns(self):
        from repro.jvm import JProgram, Machine
        p = JProgram()
        callee = MethodBuilder("C", "addOne", num_args=1)
        callee.load(0).iconst(1).add().iret()
        p.add_builder(callee)
        main = MethodBuilder("C", "main")
        main.iconst(41).invoke("addOne", 1).native("print", 1, False).ret()
        p.add_builder(main)
        p.add_entry("main")
        result = Machine(p).run()
        assert result.output == ["42"]

    def test_void_invoke_pushes_none(self):
        from repro.jvm import JProgram, Machine
        p = JProgram()
        callee = MethodBuilder("C", "noop")
        callee.ret()
        p.add_builder(callee)
        main = MethodBuilder("C", "main")
        main.invoke("noop", 0).pop().iconst(1).native("print", 1, False).ret()
        p.add_builder(main)
        p.add_entry("main")
        assert Machine(p).run().output == ["1"]

    def test_recursion(self):
        from repro.jvm import JProgram, Machine
        p = JProgram()
        fib = MethodBuilder("C", "fib", num_args=1)
        base = fib.new_label()
        fib.load(0).iconst(2).if_icmplt(base)
        fib.load(0).iconst(1).sub().invoke("fib", 1)
        fib.load(0).iconst(2).sub().invoke("fib", 1)
        fib.add().iret()
        fib.place(base)
        fib.load(0).iret()
        p.add_builder(fib)
        main = MethodBuilder("C", "main")
        main.iconst(10).invoke("fib", 1).native("print", 1, False).ret()
        p.add_builder(main)
        p.add_entry("main")
        assert Machine(p).run().output == ["55"]

    def test_unknown_native_traps(self):
        b = MethodBuilder("C", "m")
        b.native("no_such", 0, False).ret()
        with pytest.raises(TrapError, match="no_such"):
            run_method(b)


class TestObjects:
    def test_field_roundtrip(self):
        b = MethodBuilder("C", "m")
        b.new("Point").store(0)
        b.load(0).iconst(11).putfield("x")
        b.load(0).getfield("x")
        assert result_of(print_top(b), classes=[point_class()]) == ["11"]

    def test_array_roundtrip(self):
        b = MethodBuilder("C", "m")
        b.iconst(10).newarray(Kind.INT).store(0)
        b.load(0).iconst(3).iconst(55).astore()
        b.load(0).iconst(3).aload()
        assert result_of(print_top(b)) == ["55"]

    def test_arraylength(self):
        b = MethodBuilder("C", "m")
        b.iconst(17).newarray(Kind.INT).arraylength()
        assert result_of(print_top(b)) == ["17"]

    def test_null_dereference_traps(self):
        b = MethodBuilder("C", "m")
        b.null().getfield("x").pop().ret()
        with pytest.raises(NullPointerError):
            run_method(b, classes=[point_class()])

    def test_negative_array_length_traps(self):
        b = MethodBuilder("C", "m")
        b.iconst(-1).newarray(Kind.INT).pop().ret()
        with pytest.raises(TrapError, match="negative"):
            run_method(b)

    def test_index_out_of_bounds_traps(self):
        b = MethodBuilder("C", "m")
        b.iconst(4).newarray(Kind.INT).store(0)
        b.load(0).iconst(4).aload().pop().ret()
        with pytest.raises(TrapError):
            run_method(b)

    def test_multianewarray(self):
        b = MethodBuilder("C", "m")
        b.iconst(3).iconst(4).multianewarray(Kind.INT, 2).store(0)
        b.load(0).iconst(2).aload().store(1)         # row 2
        b.load(1).iconst(1).iconst(9).astore()       # row2[1] = 9
        b.load(1).iconst(1).aload()
        assert result_of(print_top(b)) == ["9"]

    def test_statics_roundtrip(self):
        b = MethodBuilder("C", "m")
        b.iconst(5).putstatic("counter")
        b.getstatic("counter")
        out = result_of(print_top(b), statics={"counter": 0})
        assert out == ["5"]

    def test_undeclared_static_read_traps(self):
        b = MethodBuilder("C", "m")
        b.getstatic("ghost").pop().ret()
        with pytest.raises(TrapError, match="ghost"):
            run_method(b)

    def test_memory_accesses_reach_hierarchy(self):
        b = MethodBuilder("C", "m")
        b.iconst(64).newarray(Kind.INT).store(0)
        counting_loop(b, 64, 1,
                      lambda b: b.load(0).load(1).iconst(1).astore())
        b.ret()
        machine, result = run_method(b)
        assert result.stores > 64   # element stores + zeroing
