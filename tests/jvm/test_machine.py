"""Integration tests for the Machine: scheduling, GC, NUMA, natives."""

import pytest

from repro.heap.layout import Kind
from repro.jvm import (
    DeadlockError,
    JProgram,
    Machine,
    MachineConfig,
    MethodBuilder,
    ThreadState,
)

from tests.jvm.helpers import counting_loop, point_class


def bloat_program(iterations=50, array_len=64):
    """Allocates an array per iteration and drops it (memory bloat)."""
    p = JProgram("bloat")
    b = MethodBuilder("Bloat", "main")
    counting_loop(
        b, iterations, 0,
        lambda b: (b.iconst(array_len).newarray(Kind.INT)
                   .store(1)))
    b.ret()
    p.add_builder(b)
    p.add_entry("main")
    return p


class TestRun:
    def test_runs_to_completion(self):
        p = bloat_program()
        result = Machine(p).run()
        assert result.total_instructions > 0
        assert result.heap_allocations == 50

    def test_deterministic_across_runs(self):
        r1 = Machine(bloat_program()).run()
        r2 = Machine(bloat_program()).run()
        assert r1.wall_cycles == r2.wall_cycles
        assert r1.l1_misses == r2.l1_misses

    def test_run_with_budget_then_resume(self):
        machine = Machine(bloat_program(iterations=200))
        machine.run(max_instructions=100)
        alive = [t for t in machine.threads if t.alive]
        assert alive
        result = machine.run()
        assert not [t for t in machine.threads if t.alive]
        assert result.heap_allocations == 200

    def test_no_entry_points_rejected(self):
        p = JProgram()
        b = MethodBuilder("C", "m")
        b.ret()
        p.add_builder(b)
        with pytest.raises(Exception):
            Machine(p).run()


class TestGcDuringRun:
    def test_gc_triggered_by_bloat(self):
        # Heap of 64KB; each iteration allocates 64*8B + header.
        p = bloat_program(iterations=300, array_len=64)
        config = MachineConfig(heap_size=64 * 1024)
        result = Machine(p, config).run()
        assert result.gc_collections > 0
        assert result.heap_allocations == 300

    def test_gc_pause_charged_to_threads(self):
        p = bloat_program(iterations=300, array_len=64)
        config = MachineConfig(heap_size=64 * 1024)
        machine = Machine(p, config)
        result = machine.run()
        assert result.gc_pause_cycles > 0
        assert result.wall_cycles >= result.gc_pause_cycles

    def test_live_data_survives_gc(self):
        p = JProgram()
        b = MethodBuilder("C", "main")
        # keep[] stays live in local 0 while garbage churns.
        b.iconst(8).newarray(Kind.INT).store(0)
        b.load(0).iconst(0).iconst(123).astore()
        counting_loop(b, 200, 1,
                      lambda b: b.iconst(64).newarray(Kind.INT).store(2))
        b.load(0).iconst(0).aload().native("print", 1, False)
        b.ret()
        p.add_builder(b)
        p.add_entry("main")
        result = Machine(p, MachineConfig(heap_size=32 * 1024)).run()
        assert result.output == ["123"]
        assert result.gc_collections > 0


class TestThreads:
    def multi_thread_program(self, nthreads=4):
        p = JProgram()
        b = MethodBuilder("C", "worker", num_args=1)
        b.iconst(0).store(1)
        counting_loop(b, 50, 2,
                      lambda b: b.load(1).load(0).add().store(1))
        b.ret()
        p.add_builder(b)
        for i in range(nthreads):
            p.add_entry("worker", i)
        return p

    def test_threads_round_robin_to_cpus(self):
        p = self.multi_thread_program(4)
        machine = Machine(p, MachineConfig(num_nodes=2, cpus_per_node=2))
        machine.run()
        assert [t.cpu for t in machine.threads] == [0, 1, 2, 3]

    def test_more_threads_than_cpus_share(self):
        p = self.multi_thread_program(6)
        machine = Machine(p, MachineConfig(num_nodes=1, cpus_per_node=4))
        machine.run()
        assert [t.cpu for t in machine.threads] == [0, 1, 2, 3, 0, 1]

    def test_explicit_cpu_pin(self):
        p = self.multi_thread_program(1)
        p.entry_points[0].cpu = 3
        machine = Machine(p)
        machine.run()
        assert machine.threads[0].cpu == 3

    def test_thread_start_end_callbacks(self):
        p = self.multi_thread_program(2)
        machine = Machine(p)
        started, ended = [], []
        machine.on_thread_start.append(lambda t: started.append(t.tid))
        machine.on_thread_end.append(lambda t: ended.append(t.tid))
        machine.run()
        assert started == [0, 1]
        assert sorted(ended) == [0, 1]

    def test_wall_cycles_accounts_for_cpu_sharing(self):
        # 2 threads on 1 cpu serialize; on 2 cpus they run in parallel.
        p1 = self.multi_thread_program(2)
        shared = Machine(p1, MachineConfig(num_nodes=1, cpus_per_node=1)).run()
        p2 = self.multi_thread_program(2)
        parallel = Machine(p2, MachineConfig(num_nodes=1, cpus_per_node=2)).run()
        assert shared.wall_cycles > parallel.wall_cycles


class TestAwaitStatic:
    def producer_consumer(self):
        p = JProgram()
        p.statics["ready"] = 0
        producer = MethodBuilder("C", "producer")
        producer.iconst(7).putstatic("value")
        producer.iconst(1).putstatic("ready")
        producer.ret()
        p.add_builder(producer)
        consumer = MethodBuilder("C", "consumer")
        consumer.native("await_static", 0, False, "ready")
        consumer.getstatic("value").native("print", 1, False)
        consumer.ret()
        p.add_builder(consumer)
        p.statics["value"] = 0
        return p

    def test_consumer_waits_for_producer(self):
        p = self.producer_consumer()
        # Consumer scheduled first: must park, then resume.
        p.add_entry("consumer")
        p.add_entry("producer")
        result = Machine(p).run()
        assert result.output == ["7"]

    def test_deadlock_detected(self):
        p = JProgram()
        p.statics["never"] = 0
        b = MethodBuilder("C", "main")
        b.native("await_static", 0, False, "never")
        b.ret()
        p.add_builder(b)
        p.add_entry("main")
        with pytest.raises(DeadlockError):
            Machine(p).run()


class TestNatives:
    def test_arraycopy(self):
        p = JProgram()
        b = MethodBuilder("C", "main")
        b.iconst(8).newarray(Kind.INT).store(0)
        b.iconst(8).newarray(Kind.INT).store(1)
        b.load(0).iconst(2).iconst(42).astore()
        b.load(0).iconst(0).load(1).iconst(0).iconst(8)
        b.native("arraycopy", 5, False)
        b.load(1).iconst(2).aload().native("print", 1, False)
        b.ret()
        p.add_builder(b)
        p.add_entry("main")
        assert Machine(p).run().output == ["42"]

    def test_arraycopy_bounds_checked(self):
        p = JProgram()
        b = MethodBuilder("C", "main")
        b.iconst(4).newarray(Kind.INT).store(0)
        b.iconst(4).newarray(Kind.INT).store(1)
        b.load(0).iconst(0).load(1).iconst(0).iconst(5)
        b.native("arraycopy", 5, False)
        b.ret()
        p.add_builder(b)
        p.add_entry("main")
        with pytest.raises(Exception, match="bounds"):
            Machine(p).run()

    def test_rand_is_seeded_and_bounded(self):
        p = JProgram()
        b = MethodBuilder("C", "main")
        counting_loop(b, 20, 0,
                      lambda b: b.iconst(10).native("rand", 1, True)
                      .native("print", 1, False))
        b.ret()
        p.add_builder(b)
        p.add_entry("main")
        out1 = Machine(p, MachineConfig(seed=7)).run().output
        out2 = Machine(p.clone(), MachineConfig(seed=7)).run().output
        assert out1 == out2
        assert all(0 <= int(v) < 10 for v in out1)

    def test_numa_interleave_spreads_pages(self):
        p = JProgram()
        b = MethodBuilder("C", "main")
        b.iconst(4096).newarray(Kind.INT).store(0)   # 32KB: 8 pages
        b.load(0).native("numa_interleave", 1, False)
        b.ret()
        p.add_builder(b)
        p.add_entry("main")
        machine = Machine(p, MachineConfig(num_nodes=2, zero_on_alloc=False))
        machine.run()
        obj = list(machine.heap.objects.values())[0]
        pt = machine.hierarchy.page_table
        nodes = {pt.node_of_address(a)
                 for a in range(obj.addr, obj.end, 4096)}
        assert nodes == {0, 1}

    def test_current_cpu(self):
        p = JProgram()
        b = MethodBuilder("C", "main")
        b.native("current_cpu", 0, True).native("print", 1, False)
        b.ret()
        p.add_builder(b)
        p.add_entry("main")
        assert Machine(p).run().output == ["0"]


class TestNumaBehaviour:
    def test_remote_accesses_counted_across_nodes(self):
        p = JProgram()
        p.statics["shared"] = None
        p.statics["ready"] = 0
        master = MethodBuilder("C", "master")
        master.iconst(2048).newarray(Kind.INT).putstatic("shared")
        master.iconst(1).putstatic("ready")
        master.ret()
        p.add_builder(master)
        worker = MethodBuilder("C", "worker")
        worker.native("await_static", 0, False, "ready")
        worker.getstatic("shared").store(0)
        counting_loop(worker, 2048, 1,
                      lambda b: b.load(0).load(1).aload().pop())
        worker.ret()
        p.add_builder(worker)
        p.add_entry("master", cpu=0)
        p.add_entry("worker", cpu=4)   # other node (cpus_per_node=4)
        result = Machine(p, MachineConfig(num_nodes=2, cpus_per_node=4)).run()
        assert result.remote_accesses > 0
        assert result.remote_ratio > 0.1
