"""Unit tests for the compiled dispatch tables (repro.jvm.dispatch)."""

import pytest

from repro.heap.layout import Kind
from repro.jvm import Machine, MachineConfig, MethodBuilder
from repro.jvm.dispatch import compile_dispatch
from repro.jvm.interpreter import TrapError
from tests.jvm.helpers import counting_loop, single_method_program

def _loop_program(count=10):
    b = MethodBuilder("Test", "main")
    counting_loop(b, count, 0, lambda b: b.iconst(1).pop())
    b.ret()
    return single_method_program(b)


def _run(program, fastpath=True, **cfg):
    machine = Machine(program,
                      MachineConfig(fastpath=fastpath, **cfg))
    result = machine.run()
    return machine, result


class TestTableCompilation:
    def test_table_covers_every_instruction(self):
        program = _loop_program()
        machine = Machine(program, MachineConfig())
        runtime = machine.method_table.runtime("main")
        table = compile_dispatch(machine, runtime)
        assert len(table) == len(runtime.method.code)
        assert all(callable(h) for h in table)

    def test_table_cached_on_runtime(self):
        machine, _ = _run(_loop_program())
        runtime = machine.method_table.runtime("main")
        assert runtime.dispatch_table is not None
        # The driver reuses the cached table instead of recompiling.
        before = runtime.dispatch_table
        machine2 = Machine(_loop_program(), MachineConfig())
        machine2.run()
        assert machine.method_table.runtime("main").dispatch_table \
            is before

    def test_legacy_engine_never_compiles(self):
        machine, _ = _run(_loop_program(), fastpath=False)
        runtime = machine.method_table.runtime("main")
        assert runtime.dispatch_table is None


class TestFrameSwitchProtocol:
    """Handlers that change the frame stack must return -1 so the driver
    re-reads the top frame (and the method's cycle cost)."""

    def test_return_signals_frame_switch(self):
        b = MethodBuilder("Callee", "f")
        b.iconst(7).iret()
        callee = b
        main = MethodBuilder("Test", "main")
        main.invoke("f", 0).pop().ret()
        program = single_method_program(main)
        program.add_builder(callee)
        machine, result = _run(program)
        assert result.output == []

    def test_invoke_and_returns_are_stretch_enders(self):
        b = MethodBuilder("Callee", "f")
        b.iconst(7).iret()
        main = MethodBuilder("Test", "main")
        main.invoke("f", 0).pop().ret()
        program = single_method_program(main)
        program.add_builder(b)
        machine = Machine(program, MachineConfig())
        main_rt = machine.method_table.runtime("main")
        callee_rt = machine.method_table.runtime("f")
        main_table = compile_dispatch(machine, main_rt)
        callee_table = compile_dispatch(machine, callee_rt)
        from repro.jvm.interpreter import Frame, JavaThread, ThreadState

        thread = JavaThread(0, 0)
        thread.state = ThreadState.RUNNABLE
        thread.frames.append(Frame(main_rt))
        frame = thread.frames[-1]
        # INVOKE: pushes the callee frame, stores the return address.
        assert main_table[0](thread, frame) == -1
        assert frame.pc == 1
        assert thread.frames[-1].runtime is callee_rt
        # Callee: ICONST advances normally, IRETURN pops with -1.
        callee_frame = thread.frames[-1]
        assert callee_table[0](thread, callee_frame) == 1
        assert callee_table[1](thread, callee_frame) == -1
        assert thread.frames[-1] is frame
        assert frame.stack == [7]


class TestErrorParity:
    """Both engines must raise the same TrapError text (tools and tests
    match on these messages)."""

    def _message(self, program, fastpath):
        machine = Machine(program, MachineConfig(fastpath=fastpath))
        with pytest.raises(TrapError) as excinfo:
            machine.run()
        return str(excinfo.value)

    def _assert_parity(self, make_program):
        fast = self._message(make_program(), fastpath=True)
        legacy = self._message(make_program(), fastpath=False)
        assert fast == legacy

    def test_null_deref_message(self):
        def make():
            b = MethodBuilder("Test", "main")
            b.null().iconst(0).aload().pop().ret()
            return single_method_program(b)

        self._assert_parity(make)

    def test_division_by_zero_message(self):
        def make():
            b = MethodBuilder("Test", "main")
            b.iconst(1).iconst(0).div().pop().ret()
            return single_method_program(b)

        self._assert_parity(make)

    def test_unknown_invoke_reports_advanced_pc(self):
        # The legacy engine advances frame.pc before resolving, so the
        # message carries bci 1 even though INVOKE sits at bci 0.
        def make():
            b = MethodBuilder("Test", "main")
            b.invoke("nosuch", 0).ret()
            return single_method_program(b)

        fast = self._message(make(), fastpath=True)
        assert fast == self._message(make(), fastpath=False)
        assert "bci 1" in fast

    def test_pc_past_end_message(self):
        def make():
            b = MethodBuilder("Test", "main")
            b.iconst(1).pop()  # no return
            return single_method_program(b)

        fast = self._message(make(), fastpath=True)
        legacy = self._message(make(), fastpath=False)
        assert fast == legacy
        assert "past end" in fast

    def test_array_bounds_message(self):
        def make():
            b = MethodBuilder("Test", "main")
            b.iconst(4).newarray(Kind.INT).store(0)
            b.load(0).iconst(9).aload().pop().ret()
            return single_method_program(b)

        self._assert_parity(make)


class TestEngineEquivalence:
    def test_same_counters_on_small_program(self):
        def make():
            b = MethodBuilder("Test", "main")
            b.iconst(64).newarray(Kind.INT).store(1)

            def body(b):
                b.load(1).load(0).load(0).astore()

            counting_loop(b, 64, 0, body)
            b.ret()
            return single_method_program(b)

        _, fast = _run(make(), fastpath=True)
        _, legacy = _run(make(), fastpath=False)
        assert fast == legacy
