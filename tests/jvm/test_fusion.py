"""Superinstruction fusion (repro.jvm.dispatch.compile_fused).

Three layers of coverage:

* block discovery — :func:`fused_blocks` respects the verifier's
  basic-block leaders and the fusability rules (no stretch enders or
  allocation sites inside a block, branches only as the final
  instruction, minimum size 2);
* table shape — the compiled fused table has ``(closure, k)`` entries
  exactly at block starts and ``None`` everywhere else, and
  ``warm_dispatch`` precompiles both observation variants;
* equivalence — for arithmetic, array, field, static and branchy
  programs the fused engine, the per-handler compiled-dispatch engine
  and the legacy one-step interpreter produce identical MachineResults
  across scheduling quanta, traps surface with identical messages and
  partial-progress accounting, and the bulk-budget guard's bailout
  path (forced by disabling skip-ahead under an armed sampler) falls
  back to per-handler execution without changing any observable.
"""

import pytest

from repro.core import DJXPerf, DjxConfig
from repro.heap.layout import Kind
from repro.jvm import Machine, MachineConfig, MethodBuilder
from repro.jvm.dispatch import _FUSABLE_TAIL, fused_blocks
from repro.jvm.interpreter import TrapError
from repro.jvm.verifier import _LEADER_AFTER, block_leaders
from tests.jvm.helpers import (
    counting_loop,
    point_class,
    single_method_program,
)


# ----------------------------------------------------------------------
# Program zoo: each exercises a different fused-block shape.
# ----------------------------------------------------------------------

def arith_program(n=400):
    """Pure register arithmetic: the longest fusable blocks."""
    b = MethodBuilder("Fuse", "main")
    b.iconst(1).store(1)
    counting_loop(b, n, 0, lambda b: (
        b.load(1).load(0).add().iconst(3).mul()
         .iconst(8191).band().store(1)))
    b.ret()
    return single_method_program(b)


def array_program(passes=6, length=64):
    """Read-modify-write array sweeps: access-bearing fused blocks."""
    b = MethodBuilder("Fuse", "main")
    b.iconst(length).newarray(Kind.INT).store(1)

    def inner(b):
        # a[j] = a[j] * 2 + j
        (b.load(1).load(2)
          .load(1).load(2).aload()
          .iconst(2).mul().load(2).add()
          .astore())

    counting_loop(b, passes, 0, lambda b: counting_loop(b, length, 2, inner))
    b.load(1).arraylength().store(3)
    b.ret()
    return single_method_program(b)


def field_program(n=300):
    """GETFIELD/PUTFIELD traffic against one live object."""
    b = MethodBuilder("Fuse", "main")
    b.new("Point").store(1)
    b.load(1).iconst(1).putfield("y")
    counting_loop(b, n, 0, lambda b: (
        b.load(1).load(1).getfield("x").load(1).getfield("y")
         .add().putfield("x"),
        b.load(1).load(1).getfield("y").load(0).add()
         .iconst(1023).band().putfield("y")))
    b.ret()
    return single_method_program(b, classes=(point_class(),))


def static_program(n=200):
    """GETSTATIC/PUTSTATIC accumulate loop."""
    b = MethodBuilder("Fuse", "main")
    counting_loop(b, n, 0, lambda b: (
        b.getstatic("S.v").load(0).add().putstatic("S.v")))
    b.ret()
    return single_method_program(b, statics={"S.v": 5})


def mixed_program(n=300):
    """Branches, DIV/REM, DUP/SWAP/NEG shuffles: worst-case shapes."""
    b = MethodBuilder("Fuse", "main")
    b.iconst(1).store(1)

    def body(b):
        odd = b.new_label()
        done = b.new_label()
        b.load(0).iconst(1).band().if_ne(odd)
        (b.load(1).load(0).iconst(7).mul().add()
          .iconst(997).rem().iconst(1).add().store(1))
        b.goto(done)
        b.place(odd)
        (b.load(0).iconst(3).div()
          .load(1).swap().bxor()
          .dup().pop().neg().neg()
          .load(1).add().store(1))
        b.place(done)

    counting_loop(b, n, 0, body)
    b.ret()
    return single_method_program(b)


PROGRAMS = {
    "arith": arith_program,
    "array": array_program,
    "field": field_program,
    "static": static_program,
    "mixed": mixed_program,
}


def _run(factory, **cfg):
    machine = Machine(factory(), MachineConfig(**cfg))
    return machine, machine.run()


# ----------------------------------------------------------------------
# Block discovery
# ----------------------------------------------------------------------

class TestFusedBlocks:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_blocks_respect_leaders_and_fusability(self, name):
        code = PROGRAMS[name]().methods["main"].code
        leaders = block_leaders(code)
        blocks = fused_blocks(code)
        assert blocks, f"{name}: no fusable blocks found"
        for start, end in blocks:
            assert start in leaders
            assert end - start >= 2
            # A block never extends past the next leader: control can
            # only enter a superinstruction at its head.
            assert all(i not in leaders for i in range(start + 1, end))
            # Stretch enders and allocation sites are never fused.
            assert all(code[i].op not in _LEADER_AFTER
                       for i in range(start, end))
            # A branch may only terminate a block.
            assert all(code[i].op not in _FUSABLE_TAIL
                       for i in range(start, end - 1))

    def test_blocks_never_overlap(self):
        code = mixed_program().methods["main"].code
        covered = set()
        for start, end in fused_blocks(code):
            span = set(range(start, end))
            assert not span & covered
            covered |= span

    def test_single_instruction_runs_not_fused(self):
        # ret-only method: nothing to fuse.
        b = MethodBuilder("Tiny", "main")
        b.iconst(0).pop().ret()
        code = single_method_program(b).methods["main"].code
        # ICONST+POP fuse; the lone RET does not appear in any block.
        for start, end in fused_blocks(code):
            assert all(code[i].op not in _LEADER_AFTER
                       for i in range(start, end))


# ----------------------------------------------------------------------
# Table shape & warm-up
# ----------------------------------------------------------------------

class TestFusedTable:
    def test_warm_dispatch_precompiles_both_variants(self):
        machine = Machine(arith_program(), MachineConfig())
        machine.warm_dispatch()
        runtime = machine.method_table.runtime("main")
        assert runtime.fused_table is not None
        assert runtime.fused_table_observed is not None
        assert machine.fusion.blocks_fused > 0

    def test_entries_exactly_at_block_starts(self):
        machine = Machine(mixed_program(), MachineConfig())
        machine.warm_dispatch()
        runtime = machine.method_table.runtime("main")
        code = runtime.method.code
        starts = {s for s, _ in fused_blocks(code)}
        for table in (runtime.fused_table, runtime.fused_table_observed):
            assert len(table) == len(code)
            populated = {i for i, e in enumerate(table) if e is not None}
            assert populated == starts
            for start, end in fused_blocks(code):
                closure, k = table[start]
                assert callable(closure)
                assert k == end - start

    def test_compiled_dispatch_engine_skips_fused_tables(self):
        machine, _ = _run(arith_program, fused=False)
        runtime = machine.method_table.runtime("main")
        assert runtime.fused_table is None
        assert runtime.fused_table_observed is None

    def test_counters_track_execution(self):
        machine, _ = _run(arith_program)
        assert machine.fusion.blocks_fused > 0
        assert machine.fusion.fused_executions > 0
        assert machine.fusion.guard_bailouts == 0


# ----------------------------------------------------------------------
# Three-engine equivalence
# ----------------------------------------------------------------------

class TestEquivalence:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_three_engines_agree(self, name):
        factory = PROGRAMS[name]
        _, fused = _run(factory)
        _, compiled = _run(factory, fused=False)
        _, legacy = _run(factory, fastpath=False)
        assert fused == compiled, f"{name}: fused vs compiled diverged"
        assert fused == legacy, f"{name}: fused vs legacy diverged"

    @pytest.mark.parametrize("quantum", [1, 2, 3, 5, 500])
    def test_quantum_sweep(self, quantum):
        # Tiny quanta make stretch budgets expire mid-block-chain;
        # fused block entry must honour the remaining budget exactly
        # like per-handler dispatch does.
        _, fused = _run(mixed_program, quantum=quantum)
        _, compiled = _run(mixed_program, fused=False, quantum=quantum)
        assert fused == compiled

    def test_memory_state_identical(self):
        m_fused, _ = _run(array_program)
        m_comp, _ = _run(array_program, fused=False)
        for mf, mc in ((m_fused, m_comp),):
            f, c = mf.hierarchy.stats, mc.hierarchy.stats
            assert vars(f) == vars(c)


# ----------------------------------------------------------------------
# Trap parity
# ----------------------------------------------------------------------

def div_trap_program():
    """Divide by zero mid-block, after a fused prefix."""
    b = MethodBuilder("Trap", "main")
    b.iconst(6).iconst(7).mul().iconst(1).iconst(1).sub().div().store(1)
    b.ret()
    return single_method_program(b)


def loop_trap_program():
    """Faults at iteration 5 of a warm fused loop: 100 / (5 - i)."""
    b = MethodBuilder("Trap", "main")
    counting_loop(b, 10, 0, lambda b: (
        b.iconst(100).iconst(5).load(0).sub().div().store(1)))
    b.ret()
    return single_method_program(b)


def npe_trap_program():
    """Null deref inside a fused block."""
    b = MethodBuilder("Trap", "main")
    b.iconst(3).store(1)
    b.null().getfield("x").store(2)
    b.ret()
    return single_method_program(b, classes=(point_class(),))


TRAPS = {
    "div": div_trap_program,
    "loop-div": loop_trap_program,
    "npe": npe_trap_program,
}


class TestTrapParity:
    @pytest.mark.parametrize("name", sorted(TRAPS))
    def test_identical_trap_messages(self, name):
        factory = TRAPS[name]
        messages = {}
        for label, kw in (("fused", {}), ("compiled", {"fused": False}),
                          ("legacy", {"fastpath": False})):
            machine = Machine(factory(), MachineConfig(**kw))
            with pytest.raises(TrapError) as excinfo:
                machine.run()
            messages[label] = str(excinfo.value)
        assert messages["fused"] == messages["compiled"]
        assert messages["fused"] == messages["legacy"]

    def test_partial_progress_accounting_matches(self):
        # The accesses and cycles charged before the faulting bci must
        # match per-handler execution exactly (fault protocol).
        stats = {}
        for label, kw in (("fused", {}), ("compiled", {"fused": False})):
            machine = Machine(loop_trap_program(), MachineConfig(**kw))
            with pytest.raises(TrapError):
                machine.run()
            stats[label] = vars(machine.hierarchy.stats)
        assert stats["fused"] == stats["compiled"]


# ----------------------------------------------------------------------
# Guard bailouts
# ----------------------------------------------------------------------

def _profiled_result(factory, **cfg):
    profiler = DJXPerf(DjxConfig(sample_period=16, size_threshold=0))
    program = profiler.instrument(factory())
    machine = Machine(program, MachineConfig(**cfg))
    profiler.attach(machine)
    return machine, machine.run()


class TestGuardBailout:
    def test_disabled_skip_ahead_forces_bailouts(self):
        # With an armed sampler and skip_ahead off, the bulk-budget
        # guard can never pass: every observed fused-block entry must
        # bail to the per-handler chain — and the run must still be
        # indistinguishable from the compiled-dispatch engine.
        m_bail, r_bail = _profiled_result(array_program, skip_ahead=False)
        assert m_bail.fusion.guard_bailouts > 0
        m_comp, r_comp = _profiled_result(array_program, skip_ahead=False,
                                          fused=False)
        assert r_bail == r_comp

    def test_skip_ahead_run_matches_bailout_run(self):
        _, r_fast = _profiled_result(array_program, skip_ahead=True)
        _, r_bail = _profiled_result(array_program, skip_ahead=False)
        assert r_fast == r_bail


# ----------------------------------------------------------------------
# Warm codegen cache (process-wide reuse of fused artifacts)
# ----------------------------------------------------------------------

class TestWarmCodegenCache:
    def setup_method(self):
        from repro.jvm.dispatch import reset_warm_cache

        reset_warm_cache()

    def test_second_machine_reuses_compiled_artifacts(self):
        from repro.jvm.dispatch import warm_cache_stats

        first = Machine(arith_program())
        first.warm_dispatch()
        after_first = warm_cache_stats()
        assert after_first["misses"] > 0
        cold_misses = after_first["misses"]

        second = Machine(arith_program())
        second.warm_dispatch()
        after_second = warm_cache_stats()
        # Same bytecode: every artifact comes from the cache.
        assert after_second["misses"] == cold_misses
        assert after_second["hits"] >= cold_misses

    def test_warm_machine_results_identical_to_cold(self):
        cold = Machine(arith_program())
        cold.warm_dispatch()
        cold_result = cold.run()
        warm = Machine(arith_program())
        warm.warm_dispatch()
        warm_result = warm.run()
        assert warm_result == cold_result
        assert warm.fusion.blocks_fused == cold.fusion.blocks_fused

    def test_different_programs_do_not_collide(self):
        from repro.jvm.dispatch import warm_cache_stats

        Machine(arith_program()).warm_dispatch()
        misses_one = warm_cache_stats()["misses"]
        # Same class/method name, different bytecode: distinct keys.
        Machine(mixed_program()).warm_dispatch()
        assert warm_cache_stats()["misses"] > misses_one

    def test_machine_config_variants_keyed_separately(self):
        """fast_ok depends on the machine's line size, so a machine
        that cannot take the aligned fast path must not reuse an
        artifact generated for one that can."""
        from repro.jvm.dispatch import warm_cache_stats

        Machine(array_program()).warm_dispatch()
        baseline = warm_cache_stats()["misses"]
        from repro.memsys.hierarchy import HierarchyConfig

        narrow = Machine(array_program(),
                         MachineConfig(hierarchy=HierarchyConfig(
                             line_size=4)))
        narrow.warm_dispatch()
        after_narrow = warm_cache_stats()["misses"]
        assert after_narrow > baseline
        # A default machine re-warming hits the original artifacts.
        wide = Machine(array_program())
        wide.warm_dispatch()
        assert warm_cache_stats()["misses"] == after_narrow
        assert wide.run() is not None

    def test_lru_capacity_bounds_entries(self):
        from repro.jvm.dispatch import FusedCodegenCache

        cache = FusedCodegenCache(capacity=1)
        m_arith = arith_program().methods["main"]
        m_mixed = mixed_program().methods["main"]
        cache.get(m_arith, True, True)
        cache.get(m_mixed, True, True)   # evicts arith
        cache.get(m_arith, True, True)   # recompiles
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["misses"] == 3
        assert stats["hits"] == 0

    def test_lru_touch_keeps_hot_entries(self):
        from repro.jvm.dispatch import FusedCodegenCache

        cache = FusedCodegenCache(capacity=2)
        m_arith = arith_program().methods["main"]
        m_mixed = mixed_program().methods["main"]
        m_field = field_program().methods["main"]
        cache.get(m_arith, True, True)
        cache.get(m_mixed, True, True)
        cache.get(m_arith, True, True)   # touch: arith is now hot
        cache.get(m_field, True, True)   # evicts mixed, not arith
        assert cache.stats() == {"hits": 1, "misses": 3, "entries": 2}
        cache.get(m_arith, True, True)
        assert cache.stats()["hits"] == 2

    def test_reset_clears_entries_and_counters(self):
        from repro.jvm.dispatch import (
            reset_warm_cache,
            warm_cache_stats,
        )

        Machine(arith_program()).warm_dispatch()
        assert warm_cache_stats()["entries"] > 0
        reset_warm_cache()
        assert warm_cache_stats() == {"hits": 0, "misses": 0,
                                      "entries": 0}
