"""Unit tests for the bytecode assembler and instruction model."""

import pytest

from repro.jvm.bytecode import (
    ALLOCATION_OPS,
    AssemblyError,
    Instruction,
    MethodBuilder,
    Op,
    disassemble,
)
from repro.heap.layout import Kind


class TestInstruction:
    def test_branch_target_accessors(self):
        ins = Instruction(Op.GOTO, (5,))
        assert ins.target == 5
        assert ins.with_target(9).target == 9

    def test_non_branch_has_no_target(self):
        ins = Instruction(Op.ICONST, (1,))
        with pytest.raises(ValueError):
            _ = ins.target
        with pytest.raises(ValueError):
            ins.with_target(3)

    def test_allocation_ops_are_the_papers_four(self):
        assert ALLOCATION_OPS == {Op.NEW, Op.NEWARRAY, Op.ANEWARRAY,
                                  Op.MULTIANEWARRAY}


class TestBuilder:
    def test_simple_method(self):
        b = MethodBuilder("C", "m")
        b.iconst(1).iconst(2).add().pop().ret()
        m = b.build()
        assert [i.op for i in m.code] == [Op.ICONST, Op.ICONST, Op.ADD,
                                          Op.POP, Op.RETURN]

    def test_labels_resolve_forward(self):
        b = MethodBuilder("C", "m")
        end = b.new_label("end")
        b.iconst(0).if_eq(end)
        b.iconst(1).pop()
        b.place(end)
        b.ret()
        m = b.build()
        assert m.code[1].target == 4

    def test_labels_resolve_backward(self):
        b = MethodBuilder("C", "m")
        top = b.place(b.new_label("top"))
        b.iconst(0).if_ne(top)
        b.ret()
        m = b.build()
        assert m.code[1].target == 0

    def test_unplaced_label_rejected(self):
        b = MethodBuilder("C", "m")
        dangling = b.new_label("dangling")
        b.goto(dangling).ret()
        with pytest.raises(AssemblyError):
            b.build()

    def test_label_placed_twice_rejected(self):
        b = MethodBuilder("C", "m")
        label = b.place(b.new_label())
        with pytest.raises(AssemblyError):
            b.place(label)

    def test_line_numbers_attach_to_instructions(self):
        b = MethodBuilder("C", "m", first_line=10)
        b.iconst(1)
        b.line(20)
        b.pop().ret()
        m = b.build()
        assert m.code[0].line == 10
        assert m.code[1].line == 20
        assert m.code[2].line == 20

    def test_max_locals_tracks_highest_index(self):
        b = MethodBuilder("C", "m", num_args=1)
        b.iconst(5).store(7).ret()
        m = b.build()
        assert m.max_locals == 8

    def test_num_args_floor_for_max_locals(self):
        b = MethodBuilder("C", "m", num_args=3)
        b.ret()
        assert b.build().max_locals == 3

    def test_source_file_defaults_to_class(self):
        b = MethodBuilder("Foo", "m")
        b.ret()
        assert b.build().source_file == "Foo.java"

    def test_multianewarray_dims_validated(self):
        b = MethodBuilder("C", "m")
        with pytest.raises(AssemblyError):
            b.multianewarray(Kind.INT, 0)

    def test_allocation_sites_listed(self):
        b = MethodBuilder("C", "m")
        b.new("X").pop()
        b.iconst(4).newarray(Kind.INT).pop()
        b.ret()
        m = b.build()
        assert m.allocation_sites() == [0, 3]


class TestDisassemble:
    def test_listing_contains_bci_and_line(self):
        b = MethodBuilder("C", "m", first_line=42)
        b.iconst(7).pop().ret()
        text = disassemble(b.build().code)
        assert "iconst 7" in text
        assert "line   42" in text
        assert text.splitlines()[2].startswith("   2")
