"""Unit tests for the simulated JIT / method table."""

import pytest

from repro.jvm import JitConfig, JProgram, Machine, MachineConfig, MethodBuilder
from repro.jvm.jit import MethodTable

from tests.jvm.helpers import counting_loop


def trivial_method(name="m"):
    b = MethodBuilder("C", name)
    b.ret()
    return b.build()


class TestMethodTable:
    def test_register_assigns_unique_ids(self):
        table = MethodTable()
        r1 = table.register(trivial_method("a"))
        r2 = table.register(trivial_method("b"))
        assert r1.method_id != r2.method_id

    def test_duplicate_registration_rejected(self):
        table = MethodTable()
        table.register(trivial_method("a"))
        with pytest.raises(ValueError):
            table.register(trivial_method("a"))

    def test_resolve_roundtrip(self):
        table = MethodTable()
        r = table.register(trivial_method())
        assert table.resolve(r.method_id) is r

    def test_unknown_lookups_raise(self):
        table = MethodTable()
        with pytest.raises(KeyError):
            table.runtime("ghost")
        with pytest.raises(KeyError):
            table.resolve(404)


class TestCompilation:
    def test_compiles_at_threshold(self):
        table = MethodTable(JitConfig(compile_threshold=3))
        r = table.register(trivial_method())
        table.on_invoke(r)
        table.on_invoke(r)
        assert not r.compiled
        pause = table.on_invoke(r)
        assert r.compiled
        assert pause == table.config.compile_pause_cycles

    def test_compile_changes_method_id_and_keeps_old_resolvable(self):
        table = MethodTable(JitConfig(compile_threshold=1))
        r = table.register(trivial_method())
        old_id = r.method_id
        table.on_invoke(r)
        assert r.method_id != old_id
        # Samples taken before the compile still resolve (paper 4.4).
        assert table.resolve(old_id) is r
        assert table.resolve(r.method_id) is r

    def test_compile_event_fires(self):
        table = MethodTable(JitConfig(compile_threshold=1))
        events = []
        table.on_compile.append(events.append)
        r = table.register(trivial_method())
        table.on_invoke(r)
        assert events == [r]

    def test_disabled_jit_never_compiles(self):
        table = MethodTable(JitConfig(compile_threshold=1, enabled=False))
        r = table.register(trivial_method())
        for _ in range(10):
            table.on_invoke(r)
        assert not r.compiled

    def test_cost_drops_after_compile(self):
        table = MethodTable(JitConfig(compile_threshold=1))
        r = table.register(trivial_method())
        before = table.cost_per_instruction(r)
        table.on_invoke(r)
        after = table.cost_per_instruction(r)
        assert after < before


class TestJitInMachine:
    def _hot_loop_program(self, threshold):
        p = JProgram()
        callee = MethodBuilder("C", "hot")
        # Enough work per invocation for compilation to pay off.
        counting_loop(callee, 10, 0,
                      lambda b: b.load(0).iconst(1).add().pop())
        callee.ret()
        p.add_builder(callee)
        main = MethodBuilder("C", "main")
        counting_loop(main, 200, 0,
                      lambda b: b.invoke("hot", 0).pop())
        main.ret()
        p.add_builder(main)
        p.add_entry("main")
        return p

    def test_hot_method_gets_compiled_during_run(self):
        p = self._hot_loop_program(50)
        machine = Machine(p, MachineConfig(
            jit=JitConfig(compile_threshold=50)))
        machine.run()
        assert machine.method_table.runtime("hot").compiled

    def test_jit_makes_programs_faster(self):
        p1 = self._hot_loop_program(50)
        with_jit = Machine(p1, MachineConfig(
            jit=JitConfig(compile_threshold=10))).run()
        p2 = self._hot_loop_program(50)
        no_jit = Machine(p2, MachineConfig(
            jit=JitConfig(enabled=False))).run()
        assert with_jit.wall_cycles < no_jit.wall_cycles
