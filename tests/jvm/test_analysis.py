"""Unit tests for CFG construction, dominators, loops, and liveness."""

from repro.jvm.analysis import (
    ControlFlowGraph,
    bcis_in_loops,
    dominators,
    liveness,
    natural_loops,
)
from repro.jvm.bytecode import MethodBuilder


def straight_line():
    b = MethodBuilder("C", "m")
    b.iconst(1).iconst(2).add().pop().ret()
    return b.build().code


def diamond():
    b = MethodBuilder("C", "m")
    els = b.new_label("else")
    join = b.new_label("join")
    b.iconst(0).if_eq(els)          # block 0
    b.nop()                          # block 1 (then)
    b.goto(join)
    b.place(els)
    b.nop()                          # block 2 (else)
    b.place(join)
    b.ret()                          # block 3
    return b.build().code


def simple_loop():
    b = MethodBuilder("C", "m")
    b.iconst(0).store(0)
    top = b.place(b.new_label("top"))
    end = b.new_label("end")
    b.load(0).iconst(10).if_icmpge(end)
    b.iinc(0, 1)
    b.goto(top)
    b.place(end)
    b.ret()
    return b.build().code


def nested_loop():
    b = MethodBuilder("C", "m")
    b.iconst(0).store(0)
    outer = b.place(b.new_label("outer"))
    outer_end = b.new_label("outer_end")
    b.load(0).iconst(3).if_icmpge(outer_end)
    b.iconst(0).store(1)
    inner = b.place(b.new_label("inner"))
    inner_end = b.new_label("inner_end")
    b.load(1).iconst(3).if_icmpge(inner_end)
    b.iinc(1, 1)
    b.goto(inner)
    b.place(inner_end)
    b.iinc(0, 1)
    b.goto(outer)
    b.place(outer_end)
    b.ret()
    return b.build().code


class TestCfg:
    def test_straight_line_single_block(self):
        cfg = ControlFlowGraph(straight_line())
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].successors == []

    def test_diamond_shape(self):
        cfg = ControlFlowGraph(diamond())
        assert len(cfg.blocks) == 4
        entry = cfg.entry
        assert sorted(entry.successors) == [1, 2]
        join = cfg.blocks[3]
        assert sorted(join.predecessors) == [1, 2]

    def test_loop_has_back_edge(self):
        cfg = ControlFlowGraph(simple_loop())
        # Some block's successor dominates it (checked via natural_loops).
        assert natural_loops(cfg)

    def test_block_of_bci(self):
        code = diamond()
        cfg = ControlFlowGraph(code)
        assert cfg.block_of(0).index == 0
        assert cfg.block_of(len(code) - 1).index == len(cfg.blocks) - 1

    def test_reachable_blocks_excludes_dead_code(self):
        b = MethodBuilder("C", "m")
        end = b.new_label("end")
        b.goto(end)
        b.nop()          # unreachable
        b.place(end)
        b.ret()
        cfg = ControlFlowGraph(b.build().code)
        reachable = cfg.reachable_blocks()
        dead = [blk.index for blk in cfg.blocks
                if blk.index not in reachable]
        assert dead  # the nop block


class TestDominators:
    def test_entry_dominates_all(self):
        cfg = ControlFlowGraph(diamond())
        dom = dominators(cfg)
        for b in cfg.reachable_blocks():
            assert 0 in dom[b]

    def test_branch_arms_do_not_dominate_join(self):
        cfg = ControlFlowGraph(diamond())
        dom = dominators(cfg)
        assert 1 not in dom[3]
        assert 2 not in dom[3]

    def test_self_domination(self):
        cfg = ControlFlowGraph(simple_loop())
        dom = dominators(cfg)
        for b in cfg.reachable_blocks():
            assert b in dom[b]


class TestNaturalLoops:
    def test_single_loop_found(self):
        cfg = ControlFlowGraph(simple_loop())
        loops = natural_loops(cfg)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header in loop.body
        assert loop.tail in loop.body

    def test_nested_loops_found(self):
        cfg = ControlFlowGraph(nested_loop())
        loops = natural_loops(cfg)
        assert len(loops) == 2
        inner = min(loops, key=lambda l: len(l.body))
        outer = max(loops, key=lambda l: len(l.body))
        assert inner.body < outer.body

    def test_straight_line_has_no_loops(self):
        assert natural_loops(ControlFlowGraph(straight_line())) == []

    def test_bcis_in_loops(self):
        code = simple_loop()
        inside = bcis_in_loops(code)
        # The iinc instruction is in the loop; the final ret is not.
        iinc_bci = next(i for i, ins in enumerate(code)
                        if ins.op.value == "iinc")
        assert iinc_bci in inside
        assert (len(code) - 1) not in inside


class TestLiveness:
    def test_loop_counter_live_inside_loop(self):
        code = simple_loop()
        live = liveness(code)
        # At the loop comparison, local 0 is live.
        load_bci = next(i for i, ins in enumerate(code)
                        if ins.op.value == "load")
        assert 0 in live[load_bci]

    def test_dead_after_last_use(self):
        b = MethodBuilder("C", "m")
        b.iconst(1).store(0)
        b.load(0).pop()
        b.iconst(2).store(0)   # redefinition: old value dead before this
        b.ret()
        live = liveness(b.build().code)
        # live-in at the redefining iconst: local 0 not live (about to be
        # overwritten and never read again).
        assert 0 not in live[4]

    def test_straight_line_without_locals(self):
        live = liveness(straight_line())
        assert all(not s for s in live)
