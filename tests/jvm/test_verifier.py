"""Unit tests for the bytecode verifier."""

import pytest

from repro.heap.layout import Kind
from repro.jvm.bytecode import Instruction, MethodBuilder, Op
from repro.jvm.verifier import VerificationError, verify, verify_program
from repro.jvm.classfile import JProgram
from repro.obs.events import ALLOC_HOOK


def code_of(build_fn):
    b = MethodBuilder("C", "m")
    build_fn(b)
    return b.build().code


class TestStructural:
    def test_empty_body_rejected(self):
        with pytest.raises(VerificationError):
            verify([])

    def test_branch_target_out_of_range(self):
        code = [Instruction(Op.GOTO, (99,)), Instruction(Op.RETURN)]
        with pytest.raises(VerificationError, match="out of range"):
            verify(code)

    def test_fall_off_end_rejected(self):
        code = [Instruction(Op.ICONST, (1,)), Instruction(Op.POP)]
        with pytest.raises(VerificationError, match="fall off"):
            verify(code)

    def test_local_index_beyond_max_locals(self):
        code = [Instruction(Op.LOAD, (5,)), Instruction(Op.POP),
                Instruction(Op.RETURN)]
        with pytest.raises(VerificationError, match="local index"):
            verify(code, max_locals=2)

    def test_negative_local_index(self):
        code = [Instruction(Op.STORE, (-1,)), Instruction(Op.RETURN)]
        with pytest.raises(VerificationError):
            verify(code, max_locals=4)


class TestStackDiscipline:
    def test_underflow_detected(self):
        code = [Instruction(Op.POP), Instruction(Op.RETURN)]
        with pytest.raises(VerificationError, match="underflow"):
            verify(code)

    def test_max_depth_reported(self):
        depth = verify(code_of(
            lambda b: b.iconst(1).iconst(2).iconst(3).pop().pop().pop().ret()))
        assert depth == 3

    def test_inconsistent_depth_at_merge_rejected(self):
        # One path pushes before the join, the other does not.
        b = MethodBuilder("C", "m")
        join = b.new_label("join")
        b.iconst(0).if_eq(join)     # path A: depth 0 at join
        b.iconst(7)                 # path B: depth 1 at join
        b.place(join)
        b.pop().ret()
        code = b.build().code
        with pytest.raises(VerificationError, match="inconsistent"):
            verify(code)

    def test_consistent_merge_accepted(self):
        b = MethodBuilder("C", "m")
        join = b.new_label("join")
        b.iconst(0).if_eq(join)
        b.nop()
        b.place(join)
        b.ret()
        assert verify(b.build().code) == 1  # transient depth from iconst

    def test_loop_verifies(self):
        b = MethodBuilder("C", "m")
        b.iconst(0).store(0)
        top = b.place(b.new_label())
        end = b.new_label()
        b.load(0).iconst(10).if_icmpge(end)
        b.iinc(0, 1).goto(top)
        b.place(end)
        b.ret()
        verify(b.build().code, max_locals=1)

    def test_invoke_models_push(self):
        code = code_of(lambda b: b.iconst(1).invoke("f", 1).pop().ret())
        verify(code)

    def test_native_with_and_without_result(self):
        verify(code_of(lambda b: b.native("rand", 1, True)
                       .pop().iconst(1).pop().ret())
               if False else
               code_of(lambda b: b.iconst(8).native("rand", 1, True)
                       .pop().ret()))
        verify(code_of(lambda b: b.iconst(1).native("print", 1, False).ret()))

    def test_multianewarray_pops_dims(self):
        code = code_of(lambda b: b.iconst(2).iconst(3)
                       .multianewarray(Kind.INT, 2).pop().ret())
        verify(code)

    def test_ireturn_needs_value(self):
        code = [Instruction(Op.IRETURN)]
        with pytest.raises(VerificationError, match="underflow"):
            verify(code)


class TestVerifyProgram:
    def test_unknown_invoke_target_rejected(self):
        p = JProgram()
        b = MethodBuilder("C", "main")
        b.invoke("missing", 0).pop().ret()
        p.add_builder(b)
        with pytest.raises(KeyError, match="missing"):
            verify_program(p)

    def test_unknown_class_rejected(self):
        p = JProgram()
        b = MethodBuilder("C", "main")
        b.new("Ghost").pop().ret()
        p.add_builder(b)
        with pytest.raises(KeyError, match="Ghost"):
            verify_program(p)

    def test_valid_program_passes(self):
        p = JProgram()
        callee = MethodBuilder("C", "callee", num_args=1)
        callee.load(0).iret()
        p.add_builder(callee)
        main = MethodBuilder("C", "main")
        main.iconst(5).invoke("callee", 1).pop().ret()
        p.add_builder(main)
        verify_program(p)

    def test_invoke_arity_mismatch_rejected(self):
        p = JProgram()
        callee = MethodBuilder("C", "callee", num_args=2)
        callee.load(0).iret()
        p.add_builder(callee)
        main = MethodBuilder("C", "main")
        main.iconst(5).invoke("callee", 1).pop().ret()
        p.add_builder(main)
        with pytest.raises(VerificationError, match="declares 2"):
            verify_program(p)


class TestArityAndDims:
    def test_negative_invoke_arity_rejected(self):
        code = [Instruction(Op.INVOKE, ("f", -1)),
                Instruction(Op.POP), Instruction(Op.RETURN)]
        with pytest.raises(VerificationError, match="negative call arity"):
            verify(code)

    def test_negative_native_arity_rejected(self):
        code = [Instruction(Op.NATIVE, ("print", -2, False)),
                Instruction(Op.RETURN)]
        with pytest.raises(VerificationError, match="negative native arity"):
            verify(code)

    def test_zero_dim_multianewarray_rejected(self):
        code = [Instruction(Op.MULTIANEWARRAY, (Kind.INT, 0)),
                Instruction(Op.POP), Instruction(Op.RETURN)]
        with pytest.raises(VerificationError, match="at least one dimension"):
            verify(code)


class TestDefiniteAssignment:
    def test_load_of_unassigned_local_rejected(self):
        code = [Instruction(Op.LOAD, (0,)),
                Instruction(Op.POP), Instruction(Op.RETURN)]
        with pytest.raises(VerificationError, match="uninitialized"):
            verify(code, max_locals=1)

    def test_args_count_as_assigned(self):
        code = [Instruction(Op.LOAD, (0,)),
                Instruction(Op.POP), Instruction(Op.RETURN)]
        verify(code, num_args=1, max_locals=1)

    def test_iinc_of_unassigned_local_rejected(self):
        code = [Instruction(Op.IINC, (0, 1)), Instruction(Op.RETURN)]
        with pytest.raises(VerificationError, match="uninitialized"):
            verify(code, max_locals=1)

    def test_store_on_one_path_only_rejected(self):
        # The branch around the store leaves local 0 unassigned on the
        # fall-through-free path; the load at the join must be rejected.
        b = MethodBuilder("C", "m")
        join = b.new_label("join")
        b.iconst(0).if_eq(join)
        b.iconst(7).store(0)
        b.place(join)
        b.load(0).pop().ret()
        with pytest.raises(VerificationError, match="uninitialized"):
            verify(b.build().code, max_locals=1)

    def test_store_on_both_paths_accepted(self):
        b = MethodBuilder("C", "m")
        els = b.new_label("else")
        join = b.new_label("join")
        b.iconst(0).if_eq(els)
        b.iconst(1).store(0).goto(join)
        b.place(els)
        b.iconst(2).store(0)
        b.place(join)
        b.load(0).pop().ret()
        verify(b.build().code, max_locals=1)


def _alloc_stretch():
    """A well-formed instrumented allocation site: alloc; DUP; hook."""
    return [Instruction(Op.ICONST, (4,)),
            Instruction(Op.NEWARRAY, (Kind.INT,)),
            Instruction(Op.DUP),
            Instruction(Op.NATIVE, (ALLOC_HOOK, 1, False)),
            Instruction(Op.POP),
            Instruction(Op.RETURN)]


class TestAllocationHookStretch:
    def test_well_formed_stretch_accepted(self):
        verify(_alloc_stretch())

    def test_hook_without_dup_rejected(self):
        code = [Instruction(Op.ICONST, (4,)),
                Instruction(Op.NEWARRAY, (Kind.INT,)),
                Instruction(Op.NATIVE, (ALLOC_HOOK, 1, False)),
                Instruction(Op.RETURN)]
        with pytest.raises(VerificationError,
                           match="allocation and DUP"):
            verify(code)

    def test_hook_at_method_start_rejected(self):
        code = [Instruction(Op.NATIVE, (ALLOC_HOOK, 1, False)),
                Instruction(Op.RETURN)]
        with pytest.raises(VerificationError,
                           match="allocation and DUP"):
            verify(code)

    def test_branch_into_dup_rejected(self):
        code = _alloc_stretch() + [Instruction(Op.GOTO, (2,))]
        with pytest.raises(VerificationError, match="middle of"):
            verify(code)

    def test_branch_into_hook_rejected(self):
        code = _alloc_stretch() + [Instruction(Op.GOTO, (3,))]
        with pytest.raises(VerificationError, match="middle of"):
            verify(code)

    def test_branch_to_allocation_itself_accepted(self):
        # Instrumentation retargets branches at the *allocation* op, so
        # a jump to bci 1 (the NEWARRAY) must stay legal.
        code = (_alloc_stretch()[:-1]
                + [Instruction(Op.ICONST, (4,)),   # new length for the jump
                   Instruction(Op.ICONST, (0,)),
                   Instruction(Op.IF_NE, (1,)),
                   Instruction(Op.POP),
                   Instruction(Op.RETURN)])
        verify(code)
