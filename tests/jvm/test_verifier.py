"""Unit tests for the bytecode verifier."""

import pytest

from repro.heap.layout import Kind
from repro.jvm.bytecode import Instruction, MethodBuilder, Op
from repro.jvm.verifier import VerificationError, verify, verify_program
from repro.jvm.classfile import JProgram


def code_of(build_fn):
    b = MethodBuilder("C", "m")
    build_fn(b)
    return b.build().code


class TestStructural:
    def test_empty_body_rejected(self):
        with pytest.raises(VerificationError):
            verify([])

    def test_branch_target_out_of_range(self):
        code = [Instruction(Op.GOTO, (99,)), Instruction(Op.RETURN)]
        with pytest.raises(VerificationError, match="out of range"):
            verify(code)

    def test_fall_off_end_rejected(self):
        code = [Instruction(Op.ICONST, (1,)), Instruction(Op.POP)]
        with pytest.raises(VerificationError, match="fall off"):
            verify(code)

    def test_local_index_beyond_max_locals(self):
        code = [Instruction(Op.LOAD, (5,)), Instruction(Op.POP),
                Instruction(Op.RETURN)]
        with pytest.raises(VerificationError, match="local index"):
            verify(code, max_locals=2)

    def test_negative_local_index(self):
        code = [Instruction(Op.STORE, (-1,)), Instruction(Op.RETURN)]
        with pytest.raises(VerificationError):
            verify(code, max_locals=4)


class TestStackDiscipline:
    def test_underflow_detected(self):
        code = [Instruction(Op.POP), Instruction(Op.RETURN)]
        with pytest.raises(VerificationError, match="underflow"):
            verify(code)

    def test_max_depth_reported(self):
        depth = verify(code_of(
            lambda b: b.iconst(1).iconst(2).iconst(3).pop().pop().pop().ret()))
        assert depth == 3

    def test_inconsistent_depth_at_merge_rejected(self):
        # One path pushes before the join, the other does not.
        b = MethodBuilder("C", "m")
        join = b.new_label("join")
        b.iconst(0).if_eq(join)     # path A: depth 0 at join
        b.iconst(7)                 # path B: depth 1 at join
        b.place(join)
        b.pop().ret()
        code = b.build().code
        with pytest.raises(VerificationError, match="inconsistent"):
            verify(code)

    def test_consistent_merge_accepted(self):
        b = MethodBuilder("C", "m")
        join = b.new_label("join")
        b.iconst(0).if_eq(join)
        b.nop()
        b.place(join)
        b.ret()
        assert verify(b.build().code) == 1  # transient depth from iconst

    def test_loop_verifies(self):
        b = MethodBuilder("C", "m")
        b.iconst(0).store(0)
        top = b.place(b.new_label())
        end = b.new_label()
        b.load(0).iconst(10).if_icmpge(end)
        b.iinc(0, 1).goto(top)
        b.place(end)
        b.ret()
        verify(b.build().code, max_locals=1)

    def test_invoke_models_push(self):
        code = code_of(lambda b: b.iconst(1).invoke("f", 1).pop().ret())
        verify(code)

    def test_native_with_and_without_result(self):
        verify(code_of(lambda b: b.native("rand", 1, True)
                       .pop().iconst(1).pop().ret())
               if False else
               code_of(lambda b: b.iconst(8).native("rand", 1, True)
                       .pop().ret()))
        verify(code_of(lambda b: b.iconst(1).native("print", 1, False).ret()))

    def test_multianewarray_pops_dims(self):
        code = code_of(lambda b: b.iconst(2).iconst(3)
                       .multianewarray(Kind.INT, 2).pop().ret())
        verify(code)

    def test_ireturn_needs_value(self):
        code = [Instruction(Op.IRETURN)]
        with pytest.raises(VerificationError, match="underflow"):
            verify(code)


class TestVerifyProgram:
    def test_unknown_invoke_target_rejected(self):
        p = JProgram()
        b = MethodBuilder("C", "main")
        b.invoke("missing", 0).pop().ret()
        p.add_builder(b)
        with pytest.raises(KeyError, match="missing"):
            verify_program(p)

    def test_unknown_class_rejected(self):
        p = JProgram()
        b = MethodBuilder("C", "main")
        b.new("Ghost").pop().ret()
        p.add_builder(b)
        with pytest.raises(KeyError, match="Ghost"):
            verify_program(p)

    def test_valid_program_passes(self):
        p = JProgram()
        callee = MethodBuilder("C", "callee", num_args=1)
        callee.load(0).iret()
        p.add_builder(callee)
        main = MethodBuilder("C", "main")
        main.iconst(5).invoke("callee", 1).pop().ret()
        p.add_builder(main)
        verify_program(p)
