#!/usr/bin/env python
"""FFT locality study: from access contexts to loop interchange.

Reproduces the paper's §7.4 case study (SPECjvm2008 Scimark.fft.large):
DJXPerf reports the ``data`` array as the dominant miss source and lists
the butterfly loop's access lines; the fix is interchanging the ``a``
and ``b`` loops to shrink the access stride.

Run:  python examples/fft_locality.py
"""

from repro.core import DjxConfig, render_site
from repro.workloads import get_workload, measure_speedup, run_profiled


def main() -> None:
    workload = get_workload("scimark-fft")

    print("=== 1. profile the strided baseline ===")
    run = run_profiled(workload, config=DjxConfig(sample_period=64))
    top = run.analysis.top_sites(1)[0]
    print(render_site(run.analysis, top, rank=1, max_access_contexts=4))

    hot_lines = sorted({path[-1].line
                        for path in top.access_contexts})
    print(f"\nhot access lines on data[]: {hot_lines} "
          f"(paper: FFT.java 171, 172, 174, 175)")

    print("\n=== 2. interchange the loops and measure ===")
    speedup, baseline, fixed = measure_speedup(workload)
    miss_drop = 1 - fixed.l1_misses / baseline.l1_misses
    print(f"  baseline     : {baseline.wall_cycles} cycles, "
          f"{baseline.l1_misses} L1 misses")
    print(f"  interchanged : {fixed.wall_cycles} cycles, "
          f"{fixed.l1_misses} L1 misses")
    print(f"  speedup {speedup:.2f}x, misses -{miss_drop:.0%} "
          f"(paper: 2.37x, -70%)")


if __name__ == "__main__":
    main()
