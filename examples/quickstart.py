#!/usr/bin/env python
"""Quickstart: profile a small program with DJXPerf, end to end.

Builds a tiny "Java" program with the bytecode DSL, runs it on the
simulated machine under the profiler, and prints the object-centric
report — allocation call paths, access call paths, and each object's
share of L1 cache misses.

Run:  python examples/quickstart.py
"""

from repro.core import DJXPerf, DjxConfig, render_report
from repro.heap.layout import Kind
from repro.jvm import JProgram, Machine, MachineConfig, MethodBuilder
from repro.workloads.dsl import for_range


def build_program() -> JProgram:
    """A program with one hot object and one cold object.

    ``Hot.work`` allocates a 64KB array per iteration and streams it
    twice (poor locality: memory bloat); a small config object is also
    allocated per iteration but barely touched.
    """
    program = JProgram("quickstart")
    b = MethodBuilder("Demo", "main", source_file="Demo.java", first_line=1)

    def body(b: MethodBuilder) -> None:
        b.line(10)                                   # the hot allocation
        b.iconst(8192).newarray(Kind.INT).store(1)
        b.line(20)                                   # the cold allocation
        b.iconst(256).newarray(Kind.INT).store(2)
        b.load(2).iconst(0).iconst(1).astore()
        b.line(12)                                   # hot accesses
        b.load(1).native("stream_array", 1, False, 2)

    for_range(b, 0, 20, body)
    b.ret()
    program.add_builder(b)
    program.add_entry("main")
    return program


def main() -> None:
    # 1. Configure the profiler: event, sampling period, size filter S.
    profiler = DJXPerf(DjxConfig(sample_period=64, size_threshold=1024))

    # 2. Java-agent pass: instrument the allocation opcodes.
    program = profiler.instrument(build_program())

    # 3. Run on a simulated machine with the JVMTI agent attached.
    machine = Machine(program, MachineConfig(heap_size=4 * 1024 * 1024))
    profiler.attach(machine)
    result = machine.run()

    # 4. Offline analysis: merge per-thread profiles and rank objects.
    analysis = profiler.analyze()
    print(render_report(analysis, top=3))
    print()
    print(f"program ran {result.total_instructions} instructions "
          f"in {result.wall_cycles} simulated cycles, "
          f"{result.gc_collections} GC(s)")
    top = analysis.top_sites(1)[0]
    print(f"top object: {top.dominant_type()} allocated at {top.location} "
          f"({analysis.share(top):.0%} of L1 misses)")


if __name__ == "__main__":
    main()
