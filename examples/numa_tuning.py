#!/usr/bin/env python
"""NUMA tuning: detect remote-access objects and fix their placement.

Reproduces the paper's §7.5/§7.6 workflow on the Eclipse Collections
workload: the master thread builds ``Interval.toArray``'s result array,
first-touching every page onto its own node; workers on the other node
then pay remote-DRAM latency.  DJXPerf's per-sample ``move_pages`` +
``PERF_SAMPLE_CPU`` comparison flags the object; the fix interleaves its
pages across nodes.

Run:  python examples/numa_tuning.py
"""

from repro.core import DjxConfig, render_numa_report
from repro.optim import AdviceKind, advise
from repro.workloads import get_workload, measure_speedup, run_profiled


def main() -> None:
    workload = get_workload("eclipse-collections")

    print("=== 1. profile the baseline on the two-node machine ===")
    run = run_profiled(workload, config=DjxConfig(sample_period=32))
    print(render_numa_report(run.analysis, top=3))

    print("\n=== 2. advice ===")
    numa_advice = [a for a in advise(run.analysis)
                   if a.kind is AdviceKind.NUMA_PLACEMENT]
    for advice in numa_advice:
        print(f"  {advice}")

    print("\n=== 3. apply the interleaved-allocation fix and measure ===")
    speedup, baseline, fixed = measure_speedup(workload)
    print(f"  baseline : remote ratio {baseline.remote_ratio:.0%}, "
          f"{baseline.wall_cycles} cycles")
    print(f"  fixed    : remote ratio {fixed.remote_ratio:.0%}, "
          f"{fixed.wall_cycles} cycles")
    print(f"  speedup  : {speedup:.2f}x   (paper: 1.13x, -41% remote)")

    print("\n=== 4. the Druid variant: parallel first-touch ===")
    druid = get_workload("apache-druid")
    druid_speedup, druid_base, druid_fixed = measure_speedup(druid)
    print(f"  baseline remote {druid_base.remote_ratio:.0%} -> "
          f"fixed remote {druid_fixed.remote_ratio:.0%}, "
          f"speedup {druid_speedup:.2f}x   (paper: 1.75x)")


if __name__ == "__main__":
    main()
