#!/usr/bin/env python
"""Memory-bloat hunt: profile → advice → mechanical fix → speedup.

Reproduces the paper's §7.1-style workflow on the ObjectLayout workload:

1. profile the baseline with DJXPerf;
2. turn the profile into ranked optimisation advice;
3. apply the singleton fix *mechanically* with the bytecode hoisting
   pass (``repro.optim.hoist``);
4. re-run and report the whole-program speedup and miss reduction.

Run:  python examples/memory_bloat_hunt.py
"""

from repro.core import DjxConfig, render_report
from repro.jvm import Machine
from repro.optim import advise, hoist_program
from repro.workloads import get_workload, run_native, run_profiled


def main() -> None:
    workload = get_workload("objectlayout")

    print("=== 1. profile the baseline ===")
    run = run_profiled(workload, config=DjxConfig(sample_period=32))
    print(render_report(run.analysis, top=4))

    print("\n=== 2. optimisation advice ===")
    advices = advise(run.analysis, top=5)
    for advice in advices:
        print(f"  {advice}")

    print("\n=== 3. apply the hoisting pass ===")
    baseline_program = workload.build_verified("baseline")
    fixed_program, hoisted = hoist_program(baseline_program)
    print(f"  hoisted {hoisted} allocation site(s) out of their loops")

    print("\n=== 4. measure ===")
    baseline = run_native(workload, "baseline")
    machine = Machine(fixed_program, workload.machine_config())
    fixed = machine.run()
    speedup = baseline.wall_cycles / fixed.wall_cycles
    miss_drop = 1 - fixed.l1_misses / baseline.l1_misses
    print(f"  baseline : {baseline.wall_cycles:>10} cycles, "
          f"{baseline.l1_misses} L1 misses, "
          f"{baseline.heap_allocations} allocations")
    print(f"  fixed    : {fixed.wall_cycles:>10} cycles, "
          f"{fixed.l1_misses} L1 misses, "
          f"{fixed.heap_allocations} allocations")
    print(f"  speedup  : {speedup:.2f}x   "
          f"L1 misses: -{miss_drop:.0%}   (paper: 1.45x, -76%)")


if __name__ == "__main__":
    main()
