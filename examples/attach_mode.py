#!/usr/bin/env python
"""Attach/detach mode: profiling an already-running service (§5.1).

The paper designs DJXPerf so it can attach to a long-running JVM, sample
for a while, and detach — allocations made before attach are unknown to
it, and the GC-move fallback (§4.5) keeps the splay tree usable anyway.
This example runs a "service", attaches mid-flight, samples a window,
detaches, and lets the service keep running undisturbed.

Run:  python examples/attach_mode.py
"""

from repro.core import DJXPerf, DjxConfig, render_report
from repro.heap.layout import Kind
from repro.jvm import Machine, JProgram, MethodBuilder
from repro.workloads.base import sim_machine
from repro.workloads.dsl import for_range


def build_service() -> JProgram:
    """A long-running request loop with a per-request buffer."""
    program = JProgram("service")
    b = MethodBuilder("Service", "loop", source_file="Service.java",
                      first_line=30)

    def handle_request(b: MethodBuilder) -> None:
        b.line(33).iconst(2048).newarray(Kind.INT).store(1)
        b.line(35).load(1).native("stream_array", 1, False, 2)

    for_range(b, 0, 300, handle_request)
    b.ret()
    program.add_builder(b)
    program.add_entry("loop")
    return program


def main() -> None:
    profiler = DJXPerf(DjxConfig(sample_period=64))
    # Instrumentation happens up front (class retransformation on a real
    # JVM); the hook is a no-op stub until the profiler attaches.
    program = profiler.instrument(build_service())
    machine = Machine(program, sim_machine(heap_size=1024 * 1024))
    DJXPerf.install_noop_hook(machine)

    print("service running unprofiled...")
    machine.run(max_instructions=3_000)

    print("attaching DJXPerf to the running service...")
    profiler.attach(machine)
    machine.run(max_instructions=6_000)       # sampling window

    print("detaching; service continues...")
    profiler.detach()
    machine.run()                             # to completion, unprofiled

    analysis = profiler.analyze()
    print()
    print(render_report(analysis, top=2))
    agent = profiler.agent
    print(f"\nsampling window stats: {agent.stats.samples_handled} samples, "
          f"{agent.stats.allocations_seen} allocations seen "
          f"(pre-attach allocations were missed, as in the paper), "
          f"{agent.stats.relocations_applied} GC moves applied")


if __name__ == "__main__":
    main()
